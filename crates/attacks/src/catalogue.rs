//! Concrete attack implementations and the [`AttackKind`] registry.

use crate::attack::{Attack, AttackContext};
use agg_tensor::rng::{derive_seed, gaussian_vector, seeded_rng};
use agg_tensor::{stats, Vector};
use serde::{Deserialize, Serialize};

/// Honest behaviour: produces gradients identical to the honest mean.
///
/// Used as the "no attack" baseline so every experiment can run through the
/// same code path with and without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAttack;

impl Attack for NoAttack {
    fn name(&self) -> &'static str {
        "none"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        vec![ctx.honest_mean(); ctx.byzantine_count]
    }
}

/// Large random gradients (`N(0, magnitude²)` per coordinate).
#[derive(Debug, Clone, Copy)]
pub struct RandomGradient {
    /// Standard deviation of each Byzantine coordinate.
    pub magnitude: f32,
}

impl Default for RandomGradient {
    fn default() -> Self {
        RandomGradient { magnitude: 100.0 }
    }
}

impl Attack for RandomGradient {
    fn name(&self) -> &'static str {
        "random"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        (0..ctx.byzantine_count)
            .map(|k| {
                let mut rng =
                    seeded_rng(derive_seed(ctx.seed, ctx.step ^ (k as u64) << 32 | 0xA77));
                gaussian_vector(&mut rng, ctx.dimension(), 0.0, self.magnitude)
            })
            .collect()
    }
}

/// The reversed-gradient adversary (the model used for the paper's Draco
/// comparison): sends `−scale ·` (honest mean).
#[derive(Debug, Clone, Copy)]
pub struct ReversedGradient {
    /// Magnification applied to the reversed direction (Draco's default
    /// experiments use 100).
    pub scale: f32,
}

impl Default for ReversedGradient {
    fn default() -> Self {
        ReversedGradient { scale: 100.0 }
    }
}

impl Attack for ReversedGradient {
    fn name(&self) -> &'static str {
        "reversed"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mut g = ctx.honest_mean();
        g.scale(-self.scale);
        vec![g; ctx.byzantine_count]
    }
}

/// Sign-flipping: sends the negated honest mean without magnification.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignFlip;

impl Attack for SignFlip {
    fn name(&self) -> &'static str {
        "sign-flip"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mut g = ctx.honest_mean();
        g.scale(-1.0);
        vec![g; ctx.byzantine_count]
    }
}

/// Non-finite gradients: a mixture of `NaN` and `±∞` coordinates — the
/// malformed input a real malicious worker (or a lossy transport) produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonFinite;

impl Attack for NonFinite {
    fn name(&self) -> &'static str {
        "non-finite"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let d = ctx.dimension();
        (0..ctx.byzantine_count)
            .map(|k| {
                Vector::from_iter((0..d).map(|i| match (i + k) % 3 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    _ => f32::NEG_INFINITY,
                }))
            })
            .collect()
    }
}

/// Constant drift towards a fixed target direction, scaled per step — models
/// an adversary steering the model towards a specific bad optimum.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDrift {
    /// Per-coordinate drift value.
    pub value: f32,
}

impl Default for ConstantDrift {
    fn default() -> Self {
        ConstantDrift { value: 10.0 }
    }
}

impl Attack for ConstantDrift {
    fn name(&self) -> &'static str {
        "constant-drift"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        vec![Vector::filled(ctx.dimension(), self.value); ctx.byzantine_count]
    }
}

/// The dimensional-leeway attack against weakly Byzantine-resilient GARs
/// (the "hidden vulnerability" of El Mhamdi et al., illustrated in the
/// paper's Figure 9, also known as "a little is enough").
///
/// The adversary submits `mean + z · σ` where `σ` is the per-coordinate
/// standard deviation of the honest gradients and `z` is small enough that
/// the crafted gradient stays inside the honest point cloud (so Krum-style
/// selection accepts it) yet, accumulated over `d ≫ 1` coordinates and many
/// steps, biases convergence towards a poor optimum. Strongly resilient GARs
/// (Bulyan) bound the per-coordinate deviation and resist it.
#[derive(Debug, Clone, Copy)]
pub struct LittleIsEnough {
    /// Multiple of the per-coordinate standard deviation to add.
    pub z: f32,
}

impl Default for LittleIsEnough {
    fn default() -> Self {
        LittleIsEnough { z: 1.0 }
    }
}

impl Attack for LittleIsEnough {
    fn name(&self) -> &'static str {
        "little-is-enough"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mean = ctx.honest_mean();
        // The row-view kernel is the right tool here: `craft` receives
        // borrowed honest rows once per round, so packing them into an arena
        // would add an O(n·d) copy for a single std computation.
        let std = stats::coordinate_std_of_rows(ctx.honest_gradients)
            .unwrap_or_else(|_| Vector::zeros(ctx.dimension()));
        let mut crafted = mean;
        let _ = crafted.axpy(self.z, &std);
        vec![crafted; ctx.byzantine_count]
    }
}

/// The attack choices exposed to experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// No attack (honest duplicates of the mean).
    None,
    /// Large random gradients.
    Random {
        /// Standard deviation of each coordinate.
        magnitude: f32,
    },
    /// Reversed (and magnified) honest mean.
    Reversed {
        /// Magnification factor.
        scale: f32,
    },
    /// Negated honest mean.
    SignFlip,
    /// NaN / ±∞ coordinates.
    NonFinite,
    /// Constant per-coordinate drift.
    ConstantDrift {
        /// Drift value.
        value: f32,
    },
    /// The dimensional-leeway ("little is enough") attack.
    LittleIsEnough {
        /// Standard-deviation multiple.
        z: f32,
    },
}

impl AttackKind {
    /// Builds the attack.
    pub fn build(&self) -> Box<dyn Attack> {
        match *self {
            AttackKind::None => Box::new(NoAttack),
            AttackKind::Random { magnitude } => Box::new(RandomGradient { magnitude }),
            AttackKind::Reversed { scale } => Box::new(ReversedGradient { scale }),
            AttackKind::SignFlip => Box::new(SignFlip),
            AttackKind::NonFinite => Box::new(NonFinite),
            AttackKind::ConstantDrift { value } => Box::new(ConstantDrift { value }),
            AttackKind::LittleIsEnough { z } => Box::new(LittleIsEnough { z }),
        }
    }

    /// Canonical name of the attack.
    pub fn name(&self) -> &'static str {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_core::{Average, Gar, MultiKrum};

    fn honest_cloud(n: usize, d: usize) -> Vec<Vector> {
        let mut rng = seeded_rng(3);
        (0..n)
            .map(|_| {
                let mut v = Vector::filled(d, 1.0);
                let _ = v.axpy(1.0, &gaussian_vector(&mut rng, d, 0.0, 0.1));
                v
            })
            .collect()
    }

    fn views(honest: &[Vector]) -> Vec<&[f32]> {
        honest.iter().map(Vector::as_slice).collect()
    }

    fn ctx<'a>(honest: &'a [&'a [f32]], model: &'a Vector, byz: usize) -> AttackContext<'a> {
        AttackContext {
            honest_gradients: honest,
            model,
            byzantine_count: byz,
            declared_f: byz,
            step: 3,
            seed: 17,
        }
    }

    #[test]
    fn every_kind_produces_the_requested_count_and_dimension() {
        let honest = honest_cloud(8, 6);
        let honest_views = views(&honest);
        let model = Vector::zeros(6);
        let kinds = [
            AttackKind::None,
            AttackKind::Random { magnitude: 10.0 },
            AttackKind::Reversed { scale: 100.0 },
            AttackKind::SignFlip,
            AttackKind::NonFinite,
            AttackKind::ConstantDrift { value: 5.0 },
            AttackKind::LittleIsEnough { z: 1.0 },
        ];
        for kind in kinds {
            let attack = kind.build();
            let crafted = attack.craft(&ctx(&honest_views, &model, 3));
            assert_eq!(crafted.len(), 3, "{}", attack.name());
            assert!(crafted.iter().all(|g| g.len() == 6), "{}", attack.name());
        }
    }

    #[test]
    fn attacks_are_deterministic() {
        let honest = honest_cloud(8, 6);
        let honest_views = views(&honest);
        let model = Vector::zeros(6);
        for kind in [AttackKind::Random { magnitude: 10.0 }, AttackKind::LittleIsEnough { z: 1.5 }]
        {
            let a = kind.build().craft(&ctx(&honest_views, &model, 2));
            let b = kind.build().craft(&ctx(&honest_views, &model, 2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reversed_gradient_points_against_the_mean() {
        let honest = honest_cloud(5, 4);
        let honest_views = views(&honest);
        let model = Vector::zeros(4);
        let crafted = ReversedGradient { scale: 10.0 }.craft(&ctx(&honest_views, &model, 1));
        let mean = ctx(&honest_views, &model, 1).honest_mean();
        let dot = crafted[0].dot(&mean).unwrap();
        assert!(dot < 0.0);
    }

    #[test]
    fn non_finite_attack_is_actually_non_finite() {
        let honest = honest_cloud(4, 9);
        let honest_views = views(&honest);
        let model = Vector::zeros(9);
        let crafted = NonFinite.craft(&ctx(&honest_views, &model, 2));
        assert!(crafted.iter().all(|g| !g.is_finite()));
    }

    #[test]
    fn reversed_attack_ruins_averaging_but_not_multi_krum() {
        // The paper's core claim in one test: a single Byzantine worker
        // defeats averaging while Multi-Krum stays within the honest cloud.
        let honest = honest_cloud(8, 5);
        let honest_views = views(&honest);
        let model = Vector::zeros(5);
        let byz = ReversedGradient { scale: 100.0 }.craft(&ctx(&honest_views, &model, 1));
        let mut all = honest.clone();
        all.extend(byz);

        let averaged = Average::new().aggregate(&all).unwrap();
        assert!(averaged[0] < 0.0, "averaging is dragged negative by the attack");

        let robust = MultiKrum::new(1).unwrap().aggregate(&all).unwrap();
        assert!((robust[0] - 1.0).abs() < 0.3, "Multi-Krum stays near the honest mean");
    }

    #[test]
    fn little_is_enough_is_selected_by_multi_krum() {
        // The crafted gradient stays inside the honest cloud, so Multi-Krum
        // (weak resilience) accepts it into its selection — exactly the
        // vulnerability that motivates Bulyan.
        let honest = honest_cloud(11, 20);
        let honest_views = views(&honest);
        let model = Vector::zeros(20);
        let context = ctx(&honest_views, &model, 4);
        let byz = LittleIsEnough { z: 0.5 }.craft(&context);
        let mut all = honest.clone();
        all.extend(byz);
        let mk = MultiKrum::new(4).unwrap();
        let selected = mk.select(&all).unwrap();
        assert!(
            selected.iter().any(|&i| i >= 11),
            "the stealthy gradient should enter the selection: {selected:?}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AttackKind::None.name(), "none");
        assert_eq!(AttackKind::SignFlip.name(), "sign-flip");
        assert_eq!(AttackKind::LittleIsEnough { z: 1.0 }.name(), "little-is-enough");
    }
}
