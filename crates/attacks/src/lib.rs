//! # agg-attacks — Byzantine worker behaviours
//!
//! The paper's threat model (§3.1): up to `f` of the `n` workers are
//! controlled by a single adversary with unbounded computational power,
//! access to the full dataset, and knowledge of every correct worker's
//! gradient. This crate implements that adversary's repertoire so the
//! evaluation can inject each behaviour into the parameter-server simulator:
//!
//! | Attack | Paper reference | Defeats |
//! |---|---|---|
//! | [`RandomGradient`] | §2.2 "a Byzantine worker can propose a gradient that can completely ruin the training" | averaging |
//! | [`ReversedGradient`] | §4.1 (the Draco adversary model) | averaging |
//! | [`SignFlip`] | classic poisoning baseline | averaging |
//! | [`NonFinite`] | §2.3 "support non-finite coordinates" | averaging, naive implementations |
//! | [`ConstantDrift`] | §3.1 goal of the adversary | averaging |
//! | [`LittleIsEnough`] | §2.2 / Fig. 9 dimensional-leeway attack | weak GARs (degrades), not Bulyan |
//! | [`Alie`] | "A Little Is Enough" (Baruch et al.), exact `z_max` | weak GARs (degrades), not Bulyan |
//! | [`MinMax`] | min-max distance attack (Shejwalkar & Houmansadr) | distance outlier tests |
//! | [`MinSum`] | min-sum distance attack (Shejwalkar & Houmansadr) | sum-of-distances scores |
//! | [`Adaptive`] | selection-feedback attacker (elastic-membership threat model) | static analyses |
//! | [`NoAttack`] | baseline | — |
//!
//! Attacks are *omniscient*: [`Attack::craft`] receives all honest gradients
//! of the round, matching the strongest adversary the paper allows — and,
//! for the adaptive family, the previous round's selection set via
//! [`AttackContext::previous_selection`].

pub mod attack;
pub mod catalogue;

pub use attack::{Attack, AttackContext, ChurnDirective};
pub use catalogue::{
    Adaptive, Alie, AttackKind, ConstantDrift, GroupCollusion, LittleIsEnough, MinMax, MinSum,
    NoAttack, NonFinite, RandomGradient, ReversedGradient, SignFlip, SlowRotation,
};
