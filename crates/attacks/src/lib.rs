//! # agg-attacks — Byzantine worker behaviours
//!
//! The paper's threat model (§3.1): up to `f` of the `n` workers are
//! controlled by a single adversary with unbounded computational power,
//! access to the full dataset, and knowledge of every correct worker's
//! gradient. This crate implements that adversary's repertoire so the
//! evaluation can inject each behaviour into the parameter-server simulator:
//!
//! | Attack | Paper reference | Defeats |
//! |---|---|---|
//! | [`RandomGradient`] | §2.2 "a Byzantine worker can propose a gradient that can completely ruin the training" | averaging |
//! | [`ReversedGradient`] | §4.1 (the Draco adversary model) | averaging |
//! | [`SignFlip`] | classic poisoning baseline | averaging |
//! | [`NonFinite`] | §2.3 "support non-finite coordinates" | averaging, naive implementations |
//! | [`ConstantDrift`] | §3.1 goal of the adversary | averaging |
//! | [`LittleIsEnough`] | §2.2 / Fig. 9 dimensional-leeway attack | weak GARs (degrades), not Bulyan |
//! | [`NoAttack`] | baseline | — |
//!
//! Attacks are *omniscient*: [`Attack::craft`] receives all honest gradients
//! of the round, matching the strongest adversary the paper allows.

pub mod attack;
pub mod catalogue;

pub use attack::{Attack, AttackContext};
pub use catalogue::{
    AttackKind, ConstantDrift, LittleIsEnough, NoAttack, NonFinite, RandomGradient,
    ReversedGradient, SignFlip,
};
