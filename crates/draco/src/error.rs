//! Error type for the Draco baseline.

use thiserror::Error;

/// Errors produced by the Draco schemes and trainer.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum DracoError {
    /// The configuration violates Draco's requirement `n ≥ (2f + 1)` per
    /// group or is otherwise inconsistent.
    #[error("invalid Draco configuration: {0}")]
    InvalidConfig(String),

    /// Majority decoding failed: no value reached the required `f + 1`
    /// agreement within a group.
    #[error("majority decoding failed for group {group}: no value has {required} supporters")]
    DecodingFailed {
        /// Index of the undecodable group.
        group: usize,
        /// Number of identical submissions required.
        required: usize,
    },

    /// A model or data failure from the underlying stack.
    #[error("training failure: {0}")]
    Training(String),
}

impl From<agg_nn::NnError> for DracoError {
    fn from(e: agg_nn::NnError) -> Self {
        DracoError::Training(e.to_string())
    }
}

impl From<agg_data::DataError> for DracoError {
    fn from(e: agg_data::DataError) -> Self {
        DracoError::Training(e.to_string())
    }
}

impl From<agg_ps::PsError> for DracoError {
    fn from(e: agg_ps::PsError) -> Self {
        DracoError::Training(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DracoError::DecodingFailed { group: 2, required: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e: DracoError = agg_data::DataError::Empty("x").into();
        assert!(matches!(e, DracoError::Training(_)));
    }
}
