//! Draco's redundancy schemes: group assignment and majority decoding.

use crate::{DracoError, Result};
use agg_tensor::Vector;
use serde::{Deserialize, Serialize};

/// How redundant work is assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AssignmentScheme {
    /// Repetition code: workers are split into groups of `2f + 1`; everyone
    /// in a group computes the gradient of the *same* mini-batch. This is the
    /// variant the paper uses for its comparison ("we use the repetition
    /// method because it gives better results than the cyclic one").
    #[default]
    Repetition,
    /// Cyclic code: mini-batch `j` is assigned to the `2f + 1` consecutive
    /// workers `j, j+1, …, j+2f (mod groups·(2f+1))`. Included for
    /// completeness of the assignment logic; decoding falls back to the same
    /// per-chunk majority as repetition.
    Cyclic,
}

/// The assignment of workers to redundancy groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupAssignment {
    scheme: AssignmentScheme,
    workers: usize,
    redundancy: usize,
    /// `groups[g]` lists the workers responsible for group `g`'s mini-batch.
    groups: Vec<Vec<usize>>,
}

impl GroupAssignment {
    /// Builds an assignment for `workers` workers tolerating `f` Byzantine
    /// workers (redundancy `r = 2f + 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::InvalidConfig`] when `workers < 2f + 1` or
    /// `workers` is not a multiple of the group size under the repetition
    /// scheme.
    pub fn new(scheme: AssignmentScheme, workers: usize, f: usize) -> Result<Self> {
        let redundancy = 2 * f + 1;
        if workers < redundancy {
            return Err(DracoError::InvalidConfig(format!(
                "Draco needs at least 2f + 1 = {redundancy} workers, got {workers}"
            )));
        }
        let groups = match scheme {
            AssignmentScheme::Repetition => {
                // Trailing workers that do not fill a complete group join the
                // last group (extra redundancy never hurts correctness).
                let full_groups = workers / redundancy;
                let mut groups: Vec<Vec<usize>> = (0..full_groups)
                    .map(|g| (g * redundancy..(g + 1) * redundancy).collect())
                    .collect();
                for leftover in (full_groups * redundancy)..workers {
                    groups
                        .last_mut()
                        .expect("at least one group exists because workers >= redundancy")
                        .push(leftover);
                }
                groups
            }
            AssignmentScheme::Cyclic => {
                // One group per worker; group j = workers j..j+r (mod n).
                (0..workers).map(|j| (0..redundancy).map(|k| (j + k) % workers).collect()).collect()
            }
        };
        Ok(GroupAssignment { scheme, workers, redundancy, groups })
    }

    /// The scheme used.
    pub fn scheme(&self) -> AssignmentScheme {
        self.scheme
    }

    /// The redundancy factor `r = 2f + 1`.
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// Number of groups (distinct mini-batches per step).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Workers assigned to group `g`.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::InvalidConfig`] when `g` is out of range.
    pub fn group(&self, g: usize) -> Result<&[usize]> {
        self.groups
            .get(g)
            .map(Vec::as_slice)
            .ok_or_else(|| DracoError::InvalidConfig(format!("group {g} does not exist")))
    }

    /// How many gradients each worker computes per step (1 for repetition,
    /// `r` for cyclic) — the redundant-computation cost the paper charges
    /// Draco with is `redundancy ×` the per-batch work either way.
    pub fn gradients_per_worker(&self) -> usize {
        match self.scheme {
            AssignmentScheme::Repetition => 1,
            AssignmentScheme::Cyclic => self.redundancy,
        }
    }
}

/// Exact-match majority vote within one group's submissions.
///
/// Honest group members computed the gradient of the same mini-batch from the
/// same model, so their submissions are bit-identical; any value submitted by
/// at least `f + 1` workers is therefore the honest gradient.
///
/// # Errors
///
/// Returns [`DracoError::DecodingFailed`] when no value reaches `f + 1`
/// supporters (more Byzantine workers in the group than the code tolerates).
pub fn majority_decode(group: usize, submissions: &[Vector], f: usize) -> Result<Vector> {
    majority_decode_ref(group, submissions, f).cloned()
}

/// [`majority_decode`] without the output clone: returns a borrow of the
/// winning submission, so round-based callers can copy it once, straight
/// into a reused arena row.
///
/// # Errors
///
/// Returns [`DracoError::DecodingFailed`] when no gradient reaches the
/// `f + 1` supporter majority.
pub fn majority_decode_ref(group: usize, submissions: &[Vector], f: usize) -> Result<&Vector> {
    let required = f + 1;
    for candidate in submissions {
        let supporters = submissions.iter().filter(|other| bitwise_equal(candidate, other)).count();
        if supporters >= required {
            return Ok(candidate);
        }
    }
    Err(DracoError::DecodingFailed { group, required })
}

/// Bit-exact equality (NaN-aware: NaN != NaN, so corrupted gradients never
/// form a majority with each other unless truly identical bit patterns).
fn bitwise_equal(a: &Vector, b: &Vector) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_assignment_partitions_workers() {
        let a = GroupAssignment::new(AssignmentScheme::Repetition, 9, 1).unwrap();
        assert_eq!(a.redundancy(), 3);
        assert_eq!(a.group_count(), 3);
        let mut all: Vec<usize> = (0..3).flat_map(|g| a.group(g).unwrap().to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        assert_eq!(a.gradients_per_worker(), 1);
    }

    #[test]
    fn leftover_workers_join_the_last_group() {
        let a = GroupAssignment::new(AssignmentScheme::Repetition, 10, 1).unwrap();
        assert_eq!(a.group_count(), 3);
        assert_eq!(a.group(2).unwrap().len(), 4);
    }

    #[test]
    fn cyclic_assignment_wraps_around() {
        let a = GroupAssignment::new(AssignmentScheme::Cyclic, 5, 1).unwrap();
        assert_eq!(a.group_count(), 5);
        assert_eq!(a.group(4).unwrap(), &[4, 0, 1]);
        assert_eq!(a.gradients_per_worker(), 3);
    }

    #[test]
    fn too_few_workers_is_rejected() {
        assert!(GroupAssignment::new(AssignmentScheme::Repetition, 2, 1).is_err());
        assert!(GroupAssignment::new(AssignmentScheme::Repetition, 3, 1).is_ok());
        let a = GroupAssignment::new(AssignmentScheme::Repetition, 3, 1).unwrap();
        assert!(a.group(5).is_err());
    }

    #[test]
    fn majority_decode_recovers_the_honest_gradient() {
        let honest = Vector::from(vec![1.0, 2.0, 3.0]);
        let byz = Vector::from(vec![-100.0, 100.0, f32::NAN]);
        let submissions = vec![honest.clone(), byz, honest.clone()];
        let decoded = majority_decode(0, &submissions, 1).unwrap();
        assert_eq!(decoded, honest);
    }

    #[test]
    fn majority_decode_fails_when_byzantines_outnumber_the_code() {
        let honest = Vector::from(vec![1.0]);
        let byz_a = Vector::from(vec![7.0]);
        let byz_b = Vector::from(vec![9.0]);
        let submissions = vec![honest, byz_a, byz_b];
        assert!(matches!(
            majority_decode(3, &submissions, 1),
            Err(DracoError::DecodingFailed { group: 3, required: 2 })
        ));
    }

    #[test]
    fn nan_submissions_never_form_a_spurious_majority() {
        let nan = Vector::from(vec![f32::NAN, 1.0]);
        let honest = Vector::from(vec![0.5, 1.0]);
        // Two NaN-containing submissions with identical bit patterns DO form
        // a majority (they are bit-identical), but a NaN never matches a
        // different NaN payload and never matches the honest value.
        let submissions = vec![nan.clone(), honest.clone(), honest.clone()];
        assert_eq!(majority_decode(0, &submissions, 1).unwrap(), honest);
    }

    #[test]
    fn identical_byzantine_copies_can_defeat_the_code_only_with_majority() {
        // f = 1 tolerates a single traitor per group; two colluding identical
        // traitors in a group of three defeat it — documenting the code's
        // boundary, not a bug.
        let byz = Vector::from(vec![666.0]);
        let honest = Vector::from(vec![1.0]);
        let submissions = vec![byz.clone(), byz.clone(), honest];
        assert_eq!(majority_decode(0, &submissions, 1).unwrap(), byz);
    }
}
