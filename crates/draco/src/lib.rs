//! # agg-draco — the Draco baseline
//!
//! Draco (Chen et al., 2018) is the paper's strong-resilience comparator: it
//! tolerates Byzantine workers not by robust aggregation but by **algorithmic
//! redundancy** — every gradient is computed by `r = 2f + 1` workers on the
//! *same* data, and the server decodes the true gradient by majority.
//!
//! The paper's comparison highlights three defining costs, all reproduced
//! here:
//!
//! 1. each worker computes `2f + 1` gradients' worth of work per step (or,
//!    equivalently, the cluster computes `r ×` redundant gradients);
//! 2. encoding/decoding is linear in `n` and `d`, so throughput barely
//!    changes with `f` but sits an order of magnitude below the
//!    TensorFlow-based systems (Figure 5);
//! 3. the scheme requires the workers to agree on the ordering/assignment of
//!    the data, which breaks the privacy/i.i.d.-only assumption AggregaThor
//!    keeps (§5).
//!
//! * [`scheme`] — the repetition and cyclic assignment schemes and the
//!   majority decoder.
//! * [`engine`] — [`engine::DracoTrainer`] (end-to-end training on the same
//!   synthetic experiments as `agg-ps`) and
//!   [`engine::DracoThroughputSimulation`] (the Figure 5 cost model).

pub mod engine;
pub mod error;
pub mod scheme;

pub use engine::{DracoConfig, DracoThroughputSimulation, DracoTrainer};
pub use error::DracoError;
pub use scheme::{majority_decode, majority_decode_ref, AssignmentScheme, GroupAssignment};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DracoError>;
