//! Draco training and throughput simulation.

use crate::scheme::{majority_decode_ref, AssignmentScheme, GroupAssignment};
use crate::{DracoError, Result};
use agg_attacks::{Attack, AttackContext, AttackKind};
use agg_data::{Dataset, MiniBatchSampler};
use agg_metrics::{LatencyBreakdown, ThroughputMeter, TracePoint, TrainingTrace};
use agg_net::LinkConfig;
use agg_nn::optim::{Optimizer, OptimizerKind};
use agg_nn::schedule::LearningRate;
use agg_nn::Sequential;
use agg_ps::{CostModel, ExperimentKind, TrainingReport};
use agg_tensor::{GradientBatch, Vector};
use serde::{Deserialize, Serialize};

/// Configuration of a Draco training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DracoConfig {
    /// Model + dataset (shared with the `agg-ps` experiments so comparisons
    /// are apples-to-apples).
    pub experiment: ExperimentKind,
    /// Total number of workers.
    pub workers: usize,
    /// Byzantine workers tolerated by the code (redundancy `r = 2f + 1`).
    pub f: usize,
    /// Byzantine workers actually present (assigned to the highest ids).
    pub byzantine_count: usize,
    /// Behaviour of the Byzantine workers (the paper's Draco comparison uses
    /// the reversed-gradient adversary).
    pub attack: AttackKind,
    /// Redundancy assignment scheme.
    pub scheme: AssignmentScheme,
    /// Optimizer applied after decoding (the paper uses momentum 0.9 for
    /// Draco).
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule.
    pub learning_rate: LearningRate,
    /// Mini-batch size per group.
    pub batch_size: usize,
    /// Number of model updates.
    pub max_steps: u64,
    /// Evaluate every this many steps.
    pub eval_every: u64,
    /// Test samples per evaluation.
    pub eval_samples: usize,
    /// Simulation cost model (virtual model included).
    pub cost: CostModel,
    /// Link characteristics.
    pub link: LinkConfig,
    /// Extra per-gradient encoding overhead, as a multiple of the gradient
    /// computation time (the Draco authors report encode/decode "can be
    /// several times larger than the computation time of ordinary SGD").
    pub encode_overhead_factor: f64,
    /// Decoding cost at the server, in seconds per worker per million
    /// (effective) parameters — linear in `n · d` as in the original system.
    pub decode_sec_per_worker_million_params: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl DracoConfig {
    /// A configuration matching the paper's comparison defaults: repetition
    /// scheme, reversed-gradient adversary, momentum 0.9.
    pub fn paper_like(experiment: ExperimentKind, workers: usize, f: usize) -> Self {
        DracoConfig {
            experiment,
            workers,
            f,
            byzantine_count: 0,
            attack: AttackKind::Reversed { scale: 100.0 },
            scheme: AssignmentScheme::Repetition,
            optimizer: OptimizerKind::Momentum(0.9),
            learning_rate: LearningRate::paper_default(),
            batch_size: 25,
            max_steps: 100,
            eval_every: 10,
            eval_samples: 256,
            cost: CostModel::paper_like(),
            link: LinkConfig::datacenter(),
            encode_overhead_factor: 2.0,
            decode_sec_per_worker_million_params: 0.03,
            seed: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::InvalidConfig`] for inconsistent settings.
    pub fn validate(&self) -> Result<()> {
        if self.workers < 2 * self.f + 1 {
            return Err(DracoError::InvalidConfig(format!(
                "Draco needs at least 2f + 1 = {} workers, got {}",
                2 * self.f + 1,
                self.workers
            )));
        }
        if self.byzantine_count > self.workers {
            return Err(DracoError::InvalidConfig("byzantine_count exceeds worker count".into()));
        }
        if self.batch_size == 0 || self.max_steps == 0 || self.eval_every == 0 {
            return Err(DracoError::InvalidConfig(
                "batch_size, max_steps and eval_every must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// End-to-end Draco training on the synthetic experiments.
#[derive(Debug)]
pub struct DracoTrainer {
    config: DracoConfig,
    assignment: GroupAssignment,
    model: Sequential,
    optimizer: Box<dyn Optimizer>,
    attack: Box<dyn Attack>,
    train: Dataset,
    test: Dataset,
    samplers: Vec<MiniBatchSampler>,
    clock_sec: f64,
    step: u64,
}

impl DracoTrainer {
    /// Builds the trainer.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] when the configuration or data generation
    /// fails.
    pub fn new(config: DracoConfig) -> Result<Self> {
        config.validate()?;
        let assignment = GroupAssignment::new(config.scheme, config.workers, config.f)?;
        let (model, train, test) = config.experiment.build(config.seed)?;
        let samplers = (0..assignment.group_count())
            .map(|g| MiniBatchSampler::new(config.batch_size, config.seed, 1000 + g as u64))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let optimizer = config.optimizer.build();
        let attack = config.attack.build();
        Ok(DracoTrainer {
            config,
            assignment,
            model,
            optimizer,
            attack,
            train,
            test,
            samplers,
            clock_sec: 0.0,
            step: 0,
        })
    }

    /// The group assignment in use.
    pub fn assignment(&self) -> &GroupAssignment {
        &self.assignment
    }

    fn is_byzantine(&self, worker: usize) -> bool {
        worker >= self.config.workers - self.config.byzantine_count
    }

    /// Runs the configured number of steps.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] on model/data failures; undecodable groups are
    /// skipped and counted, not raised.
    pub fn run(&mut self) -> Result<TrainingReport> {
        let label = format!(
            "draco f={} b={} n={}",
            self.config.f, self.config.batch_size, self.config.workers
        );
        let mut trace = TrainingTrace::new(label.clone());
        let mut throughput = ThroughputMeter::new();
        let mut latency = LatencyBreakdown::new();
        let mut skipped = 0u64;

        self.evaluate(&mut trace)?;

        let cost = self.config.cost;
        let actual_dim = self.model.param_count();
        let effective_dim = cost.effective_dimension(actual_dim);
        let node_flops = 5.0e10;
        let decode_time = self.config.decode_sec_per_worker_million_params
            * self.config.workers as f64
            * effective_dim as f64
            / 1e6;

        // One decoded-gradient arena reused across rounds (cleared and
        // refilled in place, same as the `agg-ps` submissions arena).
        let mut decoded_arena =
            GradientBatch::with_capacity(self.model.param_count(), self.assignment.group_count());

        for step in 0..self.config.max_steps {
            let params = self.model.parameters();

            // Every group's honest members compute the gradient of the same
            // mini-batch; collect them first so the adversary can be
            // omniscient, then decode group by group.
            let mut group_honest: Vec<Vector> = Vec::with_capacity(self.assignment.group_count());
            for g in 0..self.assignment.group_count() {
                let (batch, labels) = self.samplers[g].next_batch(&self.train)?;
                self.model.set_parameters(&params)?;
                let eval = self.model.gradient(&batch, &labels)?;
                group_honest.push(eval.gradient);
            }
            let honest_views: Vec<&[f32]> = group_honest.iter().map(Vector::as_slice).collect();

            decoded_arena.clear();
            for (g, honest) in group_honest.iter().enumerate() {
                let members = self.assignment.group(g)?.to_vec();
                let byz_members = members.iter().filter(|&&w| self.is_byzantine(w)).count();
                let submissions: Vec<Vector> = if byz_members == 0 {
                    vec![honest.clone(); members.len()]
                } else {
                    let ctx = AttackContext {
                        honest_gradients: &honest_views,
                        model: &params,
                        byzantine_count: byz_members,
                        declared_f: self.config.f,
                        step,
                        seed: self.config.seed,
                        total_workers: self.config.workers,
                        previous_selection: None,
                    };
                    let mut crafted = self.attack.craft(&ctx).into_iter();
                    members
                        .iter()
                        .map(|&w| {
                            if self.is_byzantine(w) {
                                crafted.next().unwrap_or_else(|| honest.clone())
                            } else {
                                honest.clone()
                            }
                        })
                        .collect()
                };
                match majority_decode_ref(g, &submissions, self.config.f) {
                    // The winning submission is copied once, straight into
                    // the reused arena (no clone-then-repack round trip).
                    Ok(decoded) => decoded_arena
                        .push_row(decoded.as_slice())
                        .map_err(|e| DracoError::Training(e.to_string()))?,
                    Err(_) => skipped += 1,
                }
            }

            // Time accounting: every worker computes `gradients_per_worker`
            // gradients plus the encoding overhead; the server decodes in
            // time linear in n·d; communication is one gradient each way.
            let single_gradient = cost.gradient_time(1, self.config.batch_size, node_flops);
            let compute = single_gradient
                * self.assignment.gradients_per_worker() as f64
                * (1.0 + self.config.encode_overhead_factor);
            let comm = 2.0 * self.config.link.transfer_time(cost.payload_bytes(actual_dim));
            let round_wait = compute + comm;
            self.clock_sec += round_wait + decode_time;
            latency.record_round(round_wait, decode_time);
            throughput.record_round(decoded_arena.n() as u64, round_wait + decode_time);

            if !decoded_arena.is_empty() {
                // Decoded group gradients are averaged straight off the
                // reused arena, same as the `agg-ps` server path.
                let aggregated = decoded_arena
                    .coordinate_mean()
                    .map_err(|e| DracoError::Training(e.to_string()))?;
                let mut params = self.model.parameters();
                let lr = self.config.learning_rate.at(self.step);
                self.optimizer.step(&mut params, &aggregated, lr)?;
                self.model.set_parameters(&params)?;
                self.step += 1;
            }

            if (step + 1) % self.config.eval_every == 0 || step + 1 == self.config.max_steps {
                self.evaluate(&mut trace)?;
            }
        }

        Ok(TrainingReport {
            label,
            trace,
            throughput,
            latency,
            steps_completed: self.step,
            skipped_updates: skipped,
            simulated_time_sec: self.clock_sec,
            // Draco's fixed roster has no elastic membership.
            ..Default::default()
        })
    }

    fn evaluate(&mut self, trace: &mut TrainingTrace) -> Result<()> {
        let (batch, labels) = self.test.head_batch(self.config.eval_samples)?;
        let out = self.model.evaluate_loss(&batch, &labels)?;
        trace.record(TracePoint {
            step: self.step,
            time_sec: self.clock_sec,
            accuracy: out.correct_predictions as f64 / labels.len().max(1) as f64,
            loss: out.loss as f64,
        });
        Ok(())
    }
}

/// Cost-only Draco throughput simulation (the Draco rows of Figure 5).
#[derive(Debug, Clone)]
pub struct DracoThroughputSimulation {
    /// Number of workers.
    pub workers: usize,
    /// Tolerated Byzantine workers (`r = 2f + 1`).
    pub f: usize,
    /// Assignment scheme.
    pub scheme: AssignmentScheme,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Cost model (with the virtual model of interest).
    pub cost: CostModel,
    /// Link characteristics.
    pub link: LinkConfig,
    /// Effective gradient dimension (e.g. the paper CNN's 1.75 M).
    pub dimension: usize,
    /// Encoding overhead factor (see [`DracoConfig`]).
    pub encode_overhead_factor: f64,
    /// Decoding cost per worker per million parameters.
    pub decode_sec_per_worker_million_params: f64,
}

impl DracoThroughputSimulation {
    /// Runs the analytic simulation, returning **effective** (decoded)
    /// batches per second — the quantity comparable to the GAR systems'
    /// throughput after accounting for Draco's redundant computation.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::InvalidConfig`] when `workers < 2f + 1`.
    pub fn run(&self) -> Result<f64> {
        let assignment = GroupAssignment::new(self.scheme, self.workers, self.f)?;
        let node_flops = 5.0e10;
        let single = self.cost.gradient_time(1, self.batch_size, node_flops);
        let compute =
            single * assignment.gradients_per_worker() as f64 * (1.0 + self.encode_overhead_factor);
        let comm = 2.0 * self.link.transfer_time(self.dimension * 4);
        let decode = self.decode_sec_per_worker_million_params
            * self.workers as f64
            * self.cost.effective_dimension(self.dimension) as f64
            / 1e6;
        let round_time = compute + comm + decode;
        Ok(assignment.group_count() as f64 / round_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_ps::VirtualModelCost;

    fn quick_experiment() -> ExperimentKind {
        ExperimentKind::MlpBlobs { input_dim: 16, hidden: 24, classes: 4, samples: 600 }
    }

    fn quick_config(workers: usize, f: usize) -> DracoConfig {
        DracoConfig {
            batch_size: 16,
            max_steps: 40,
            eval_every: 10,
            eval_samples: 120,
            learning_rate: LearningRate::Fixed { rate: 0.01 },
            optimizer: OptimizerKind::RmsProp,
            ..DracoConfig::paper_like(quick_experiment(), workers, f)
        }
    }

    #[test]
    fn draco_trains_without_byzantine_workers() {
        let mut trainer = DracoTrainer::new(quick_config(6, 1)).unwrap();
        let report = trainer.run().unwrap();
        assert_eq!(report.steps_completed, 40);
        assert_eq!(report.skipped_updates, 0);
        assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
    }

    #[test]
    fn draco_recovers_exactly_under_tolerated_attack() {
        let mut config = quick_config(9, 1);
        config.byzantine_count = 1; // worker 8: one traitor in its group of three
        let mut trainer = DracoTrainer::new(config).unwrap();
        let report = trainer.run().unwrap();
        // Majority decoding removes the attack entirely, so accuracy matches
        // the clean run closely.
        assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
        assert_eq!(report.skipped_updates, 0);
    }

    #[test]
    fn colluding_traitors_beyond_the_code_break_the_group() {
        // Two identical colluding traitors in one group of three defeat the
        // f = 1 repetition code (they form the majority), which is exactly
        // the boundary the scheme documents. Training quality collapses.
        let mut config = quick_config(9, 1);
        config.byzantine_count = 2; // workers 7 and 8 share the last group
        let mut trainer = DracoTrainer::new(config).unwrap();
        let report = trainer.run().unwrap();
        assert!(
            report.final_accuracy() < 0.6,
            "the decoded attack gradient should prevent clean convergence, got {}",
            report.final_accuracy()
        );
    }

    #[test]
    fn draco_round_time_is_dominated_by_redundancy_and_decoding() {
        let mut config = quick_config(6, 1);
        config.cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
        let mut trainer = DracoTrainer::new(config).unwrap();
        let report = trainer.run().unwrap();
        // Aggregation (decode) share must be substantial, unlike the GAR
        // systems where it is a fraction of compute.
        assert!(report.latency.aggregation_share() > 0.05);
        assert!(report.simulated_time_sec > 0.0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(DracoTrainer::new(quick_config(2, 1)).is_err());
        let mut c = quick_config(6, 1);
        c.byzantine_count = 10;
        assert!(DracoTrainer::new(c).is_err());
        let mut c = quick_config(6, 1);
        c.batch_size = 0;
        assert!(DracoTrainer::new(c).is_err());
    }

    #[test]
    fn assignment_accessor_matches_configuration() {
        let trainer = DracoTrainer::new(quick_config(9, 1)).unwrap();
        assert_eq!(trainer.assignment().redundancy(), 3);
        assert_eq!(trainer.assignment().group_count(), 3);
    }

    #[test]
    fn throughput_is_an_order_of_magnitude_below_the_gar_systems() {
        let draco = DracoThroughputSimulation {
            workers: 18,
            f: 4,
            scheme: AssignmentScheme::Repetition,
            batch_size: 100,
            cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
            link: LinkConfig::datacenter(),
            dimension: 1_756_426,
            encode_overhead_factor: 2.0,
            decode_sec_per_worker_million_params: 0.03,
        }
        .run()
        .unwrap();
        // The paper reports ~48 batches/s for TensorFlow with 18 workers and
        // Draco "at least one order of magnitude slower".
        assert!(draco < 10.0, "Draco throughput {draco} should be far below the TF systems");
        assert!(draco > 0.1);
    }

    #[test]
    fn throughput_is_insensitive_to_f_compared_to_compute() {
        let base = |f| DracoThroughputSimulation {
            workers: 18,
            f,
            scheme: AssignmentScheme::Repetition,
            batch_size: 100,
            cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
            link: LinkConfig::datacenter(),
            dimension: 1_756_426,
            encode_overhead_factor: 2.0,
            decode_sec_per_worker_million_params: 0.03,
        };
        let t1 = base(1).run().unwrap();
        let t4 = base(4).run().unwrap();
        // Both configurations sit in the same low band (the paper observes
        // "changing the number of Byzantine workers does not have a
        // remarkable effect").
        assert!(t1 < 10.0 && t4 < 10.0);
        // f = 10 needs redundancy 2f + 1 = 21 > 18 workers: invalid.
        assert!(base(10).run().is_err());
    }
}
