//! Flat `f32` vectors: the representation of gradients and flattened models.
//!
//! Every gradient aggregation rule in the reproduction consumes and produces
//! [`Vector`] values. The type is a thin, shape-checked wrapper around
//! `Vec<f32>` with the arithmetic the paper's kernels need (distances, norms,
//! axpy updates) plus explicit support for non-finite coordinates, which the
//! paper calls out as "a crucial feature when facing actual malicious
//! workers".

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, flat `f32` vector.
///
/// `Vector` is the unit of exchange between workers and the parameter server:
/// a worker's gradient estimate, a model snapshot, or an aggregated update.
///
/// ```
/// use agg_tensor::Vector;
/// let g = Vector::zeros(4);
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.norm(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector { data: vec![0.0; len] }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f32) -> Self {
        Vector { data: vec![value; len] }
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no coordinates.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over coordinates.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over coordinates.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Checks that `other` has the same length, returning an error otherwise.
    fn check_len(&self, other: &Vector) -> Result<()> {
        if self.len() == other.len() {
            Ok(())
        } else {
            Err(TensorError::dim(self.len(), other.len()))
        }
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] if lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f32> {
        self.check_len(other)?;
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn squared_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>()
    }

    /// L1 norm (sum of absolute values).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum::<f32>()
    }

    /// Squared Euclidean distance to another vector of the same length.
    ///
    /// Non-finite coordinates propagate: if either operand holds a NaN the
    /// result is NaN, matching the behaviour the robust GARs rely on to
    /// exclude malformed gradients by distance.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; distance computation is on the hot path
    /// of Multi-Krum so the checked variant is [`Vector::try_squared_distance`].
    pub fn squared_distance(&self, other: &Vector) -> f32 {
        assert_eq!(self.len(), other.len(), "squared_distance requires equal lengths");
        crate::ops::squared_distance(&self.data, &other.data)
    }

    /// Shape-checked variant of [`Vector::squared_distance`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] if lengths differ.
    pub fn try_squared_distance(&self, other: &Vector) -> Result<f32> {
        self.check_len(other)?;
        Ok(self.squared_distance(other))
    }

    /// Euclidean distance to another vector.
    pub fn distance(&self, other: &Vector) -> f32 {
        self.squared_distance(other).sqrt()
    }

    /// In-place `self += alpha * other` (the classic axpy update).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &Vector) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scaling by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a new vector scaled by `alpha`.
    pub fn scaled(&self, alpha: f32) -> Vector {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Elementwise map, returning a new vector.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Vector {
        Vector { data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place elementwise map.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of coordinates.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of coordinates. Returns 0 for the empty vector.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns `true` when every coordinate is finite (no NaN, no ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Number of non-finite coordinates.
    pub fn count_non_finite(&self) -> usize {
        self.data.iter().filter(|x| !x.is_finite()).count()
    }

    /// Replaces every non-finite coordinate using `f`, which receives the
    /// coordinate index. Used by the lossy-transport recovery policies.
    pub fn replace_non_finite<F: FnMut(usize) -> f32>(&mut self, mut f: F) {
        for (i, x) in self.data.iter_mut().enumerate() {
            if !x.is_finite() {
                *x = f(i);
            }
        }
    }

    /// Clamps every coordinate into `[lo, hi]`.
    pub fn clamp(&mut self, lo: f32, hi: f32) {
        for x in &mut self.data {
            *x = x.clamp(lo, hi);
        }
    }

    /// Coordinate-wise minimum and maximum. Ignores NaN coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] if the vector is empty.
    pub fn min_max(&self) -> Result<(f32, f32)> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyInput("min_max"));
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in &self.data {
            if x.is_nan() {
                continue;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Ok((lo, hi))
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Vector { data }
    }
}

impl From<&[f32]> for Vector {
    fn from(data: &[f32]) -> Self {
        Vector { data: data.to_vec() }
    }
}

impl From<Vector> for Vec<f32> {
    fn from(v: Vector) -> Self {
        v.data
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl AsMut<[f32]> for Vector {
    fn as_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        Vector { data: iter.into_iter().collect() }
    }
}

impl Extend<f32> for Vector {
    fn extend<T: IntoIterator<Item = f32>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

impl IntoIterator for Vector {
    type Item = f32;
    type IntoIter = std::vec::IntoIter<f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.data[index]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition requires equal lengths");
        Vector { data: self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a + b).collect() }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction requires equal lengths");
        Vector { data: self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect() }
    }
}

impl Mul<f32> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f32) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector addition requires equal lengths");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector subtraction requires equal lengths");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector(len={}, norm={:.4})", self.len(), self.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let f = Vector::filled(2, 7.5);
        assert_eq!(f.as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, 4.0]);
        let b = Vector::from(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.squared_norm(), 25.0);
        assert_eq!(a.l1_norm(), 7.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert_eq!(a.dot(&b).unwrap_err(), TensorError::dim(2, 3));
    }

    #[test]
    fn distances() {
        let a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![4.0, 5.0]);
        assert_eq!(a.squared_distance(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn scaling_and_map() {
        let a = Vector::from(vec![1.0, -2.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn non_finite_handling() {
        let mut v = Vector::from(vec![1.0, f32::NAN, f32::INFINITY, 4.0]);
        assert!(!v.is_finite());
        assert_eq!(v.count_non_finite(), 2);
        v.replace_non_finite(|i| i as f32);
        assert_eq!(v.as_slice(), &[1.0, 1.0, 2.0, 4.0]);
        assert!(v.is_finite());
    }

    #[test]
    fn nan_propagates_through_distance() {
        let a = Vector::from(vec![f32::NAN, 0.0]);
        let b = Vector::zeros(2);
        assert!(a.squared_distance(&b).is_nan());
    }

    #[test]
    fn min_max_ignores_nan() {
        let v = Vector::from(vec![3.0, f32::NAN, -1.0]);
        assert_eq!(v.min_max().unwrap(), (-1.0, 3.0));
        assert!(Vector::zeros(0).min_max().is_err());
    }

    #[test]
    fn mean_and_sum() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.mean(), 2.0);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn conversions_round_trip() {
        let v = Vector::from(vec![1.0, 2.0]);
        let raw: Vec<f32> = v.clone().into();
        assert_eq!(Vector::from(raw), v);
        let collected: Vector = vec![1.0, 2.0].into_iter().collect();
        assert_eq!(collected, v);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![3.0, 4.0]);
        let s = format!("{v}");
        assert!(s.contains("len=2"));
    }
}
