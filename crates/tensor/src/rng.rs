//! Deterministic random-number helpers.
//!
//! Every experiment in the reproduction is driven by an explicit `u64` seed so
//! runs are repeatable across machines. The helpers here centralise the choice
//! of generator (xoshiro-family `SmallRng`) and provide the Gaussian sampling
//! used for weight initialisation, synthetic data, and Byzantine attacks.

use crate::Vector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Uniform};

/// Creates the crate-standard seeded RNG.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Workers, attacks, and data shards each get independent streams derived
/// from one experiment seed; SplitMix64-style mixing keeps the streams
/// decorrelated even for adjacent indices.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a vector of i.i.d. Gaussian coordinates.
pub fn gaussian_vector(rng: &mut SmallRng, len: usize, mean: f32, std: f32) -> Vector {
    let normal = Normal::new(mean, std.max(0.0)).expect("std is non-negative and finite");
    Vector::from_iter((0..len).map(|_| normal.sample(rng)))
}

/// Fills `dst` with i.i.d. Gaussian coordinates in place (the allocation-free
/// sibling of [`gaussian_vector`], for reused arenas). Draws the same stream
/// as [`gaussian_vector`] for the same RNG state.
pub fn gaussian_fill(rng: &mut SmallRng, dst: &mut [f32], mean: f32, std: f32) {
    let normal = Normal::new(mean, std.max(0.0)).expect("std is non-negative and finite");
    for v in dst {
        *v = normal.sample(rng);
    }
}

/// Samples a vector of i.i.d. uniform coordinates in `[lo, hi)`.
pub fn uniform_vector(rng: &mut SmallRng, len: usize, lo: f32, hi: f32) -> Vector {
    let uniform = Uniform::new(lo, hi);
    Vector::from_iter((0..len).map(|_| uniform.sample(rng)))
}

/// Fisher–Yates shuffles indices `0..n` and returns them.
pub fn shuffled_indices(rng: &mut SmallRng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut idx = shuffled_indices(rng, n);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = gaussian_vector(&mut seeded_rng(42), 16, 0.0, 1.0);
        let b = gaussian_vector(&mut seeded_rng(42), 16, 0.0, 1.0);
        assert_eq!(a, b);
        let c = gaussian_vector(&mut seeded_rng(43), 16, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
        // Deterministic.
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn gaussian_moments_are_roughly_right() {
        let v = gaussian_vector(&mut seeded_rng(1), 20_000, 2.0, 3.0);
        let mean = v.mean();
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        let var: f32 =
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (v.len() - 1) as f32;
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_bounds() {
        let v = uniform_vector(&mut seeded_rng(2), 1000, -1.0, 1.0);
        assert!(v.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded_rng(3);
        let mut idx = shuffled_indices(&mut rng, 100);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_has_distinct_elements() {
        let mut rng = seeded_rng(4);
        let s = sample_without_replacement(&mut rng, 50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_without_replacement_panics_when_k_exceeds_n() {
        let mut rng = seeded_rng(5);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }
}
