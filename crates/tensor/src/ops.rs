//! Free-standing elementwise operations and activation primitives shared by
//! the neural-network crate and the data pipeline.

use crate::Vector;

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of the rectified linear unit with respect to its input.
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hyperbolic tangent (thin wrapper, provided for symmetry).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Numerically stable softmax over a slice, written into a new `Vec`.
///
/// Subtracts the maximum before exponentiation so large logits do not
/// overflow. An all-`-inf` input produces a uniform distribution.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return vec![1.0 / logits.len() as f32; logits.len()];
    }
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum value (ties broken toward the lower index).
/// Returns `None` for an empty slice.
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) if v > bv => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// Cross-entropy loss between a softmax distribution and a one-hot label.
///
/// Probabilities are clamped away from zero for numerical stability.
pub fn cross_entropy(probabilities: &[f32], label: usize) -> f32 {
    let p = probabilities.get(label).copied().unwrap_or(0.0);
    -(p.max(1e-12)).ln()
}

/// Squared Euclidean distance between two equally sized slices.
///
/// This is the innermost kernel of Multi-Krum's O(n²·d) pairwise-distance
/// computation: four independent accumulators keep the reduction free to
/// vectorise. Non-finite coordinates propagate (NaN in, NaN out), matching
/// the behaviour the robust GARs rely on to exclude malformed gradients.
/// Operates on raw slices so both [`Vector`] and the contiguous
/// [`crate::batch::GradientBatch`] rows share one implementation.
///
/// # Panics
///
/// Panics (debug) if the lengths differ; in release the shorter length wins.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance requires equal lengths");
    let mut acc = [0.0f32; 4];
    let chunks = a.chunks_exact(4);
    let rem = chunks.remainder();
    let other_chunks = b.chunks_exact(4);
    let other_rem = other_chunks.remainder();
    for (x, y) in chunks.zip(other_chunks) {
        for lane in 0..4 {
            let d = x[lane] - y[lane];
            acc[lane] += d * d;
        }
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for (x, y) in rem.iter().zip(other_rem.iter()) {
        let d = x - y;
        total += d * d;
    }
    total
}

/// Squared Euclidean distance with sixteen independent accumulators.
///
/// The four-lane [`squared_distance`] is latency-bound on its accumulate
/// chain (one vector add must retire before the next of the same lane group
/// issues); sixteen lanes unroll the chain far enough to keep the FMA/add
/// pipes busy, which measures ~1.5–1.8× faster on the cache-resident column
/// slices the sharded partial-distance kernel feeds it. The summation order
/// differs from [`squared_distance`], so results agree only to within
/// floating-point reassociation error — callers that pin bit-exact legacy
/// behaviour keep using the four-lane kernel. Non-finite coordinates
/// propagate exactly as in [`squared_distance`].
///
/// # Panics
///
/// Panics (debug) if the lengths differ; in release the shorter length wins.
pub fn squared_distance_wide(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance_wide requires equal lengths");
    let mut acc = [0.0f32; 16];
    let chunks = a.chunks_exact(16);
    let rem = chunks.remainder();
    let other_chunks = b.chunks_exact(16);
    let other_rem = other_chunks.remainder();
    for (x, y) in chunks.zip(other_chunks) {
        for lane in 0..16 {
            let d = x[lane] - y[lane];
            acc[lane] += d * d;
        }
    }
    let mut total = acc.iter().sum::<f32>();
    for (x, y) in rem.iter().zip(other_rem.iter()) {
        let d = x - y;
        total += d * d;
    }
    total
}

/// Min-max scales a vector into `[0, 1]` in place.
///
/// Constant vectors map to all-zeros. Mirrors the paper's preprocessing step
/// ("we perform min-max scaling as a pre-processing step").
pub fn min_max_scale(v: &mut Vector) {
    let Ok((lo, hi)) = v.min_max() else { return };
    let range = hi - lo;
    if range <= 0.0 || !range.is_finite() {
        v.map_inplace(|_| 0.0);
    } else {
        v.map_inplace(|x| (x - lo) / range);
    }
}

/// Clips a gradient vector to a maximum L2 norm, returning the scaling factor
/// that was applied (1.0 when no clipping happened).
pub fn clip_by_norm(v: &mut Vector, max_norm: f32) -> f32 {
    let norm = v.norm();
    if norm > max_norm && norm > 0.0 {
        let factor = max_norm / norm;
        v.scale(factor);
        factor
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu_grad(2.0), 1.0);
        assert_eq!(relu_grad(-2.0), 0.0);
        assert_eq!(relu_grad(0.0), 0.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Huge logits must not overflow.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn cross_entropy_behaviour() {
        assert!(cross_entropy(&[1.0, 0.0], 0) < 1e-6);
        assert!(cross_entropy(&[0.0, 1.0], 0) > 10.0);
        // Out-of-range label treated as zero probability, still finite.
        assert!(cross_entropy(&[0.5, 0.5], 7).is_finite());
    }

    #[test]
    fn min_max_scaling() {
        let mut v = Vector::from(vec![2.0, 4.0, 6.0]);
        min_max_scale(&mut v);
        assert_eq!(v.as_slice(), &[0.0, 0.5, 1.0]);
        let mut constant = Vector::from(vec![3.0, 3.0]);
        min_max_scale(&mut constant);
        assert_eq!(constant.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_by_norm_scales_only_when_needed() {
        let mut v = Vector::from(vec![3.0, 4.0]);
        let factor = clip_by_norm(&mut v, 10.0);
        assert_eq!(factor, 1.0);
        assert_eq!(v.norm(), 5.0);
        let factor = clip_by_norm(&mut v, 1.0);
        assert!((factor - 0.2).abs() < 1e-6);
        assert!((v.norm() - 1.0).abs() < 1e-6);
    }
}
