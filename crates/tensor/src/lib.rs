//! # agg-tensor
//!
//! Dense numeric primitives used throughout the AggregaThor reproduction:
//!
//! * [`Vector`] — a flat `f32` vector, the representation of a gradient or a
//!   flattened model. All gradient aggregation rules (GARs) operate on slices
//!   of these.
//! * [`Matrix`] — a row-major 2-D matrix used by dense layers.
//! * [`Tensor`] — an n-dimensional array (row-major) used by convolutional
//!   layers and data pipelines.
//! * [`GradientBatch`] — a contiguous row-major `n×d` arena holding one
//!   round of gradients, plus the fused, cache-friendly aggregation kernels
//!   (triangular pairwise distances, column-block medians/means). This is
//!   the hot-path representation the GARs aggregate over.
//! * [`sortnet`] — branch-free selection networks (Batcher odd–even
//!   mergesort, pruned to the order statistics a rule actually reads),
//!   executed vertically over lanes of columns by the batch kernels for
//!   worker-count row counts.
//! * [`ShardPlan`] — the contiguous coordinate partition of a sharded
//!   deployment, shared by the aggregation kernels, the packet-routing layer
//!   and the parameter-server runtime so they agree on shard boundaries.
//! * [`stats`] — robust statistics on slices and across collections of
//!   vectors: median, trimmed mean, k-closest-to-median averaging, squared
//!   distances. These are the numeric kernels the paper's Multi-Krum and
//!   Bulyan implementations are built from.
//! * [`rng`] — small deterministic RNG helpers so every experiment in the
//!   reproduction is seedable and repeatable.
//!
//! The crate intentionally avoids BLAS or SIMD intrinsics: the reproduction
//! targets correctness and *relative* performance shape, not absolute FLOP
//! throughput.
//!
//! ```
//! use agg_tensor::Vector;
//!
//! let a = Vector::from(vec![1.0, 2.0, 3.0]);
//! let b = Vector::from(vec![1.0, 0.0, 3.0]);
//! assert_eq!(a.squared_distance(&b), 4.0);
//! ```

pub mod batch;
pub mod error;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod shard;
pub mod sortnet;
pub mod stats;
pub mod streaming;
pub mod tensor;
pub mod vector;

pub use batch::{BatchColumns, DistanceMatrix, GradientBatch};
pub use error::TensorError;
pub use matrix::Matrix;
pub use shard::{GroupPlan, ShardPlan};
pub use streaming::StreamingDistances;
pub use tensor::Tensor;
pub use vector::Vector;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
