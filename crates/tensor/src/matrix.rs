//! Row-major 2-D matrices used by dense layers and by the im2col convolution
//! lowering in `agg-nn`.

use crate::{Result, TensorError, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// ```
/// use agg_tensor::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidReshape {
                elements: data.len(),
                shape: vec![rows, cols],
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty slice and
    /// [`TensorError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::EmptyInput("Matrix::from_rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::dim(cols, row.len()));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.rows, self.cols],
                right: vec![rhs.rows, rhs.cols],
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // Loop order (i, k, j) keeps the inner loop contiguous in both
        // operands, which matters for the larger models in the benchmarks.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &Vector) -> Result<Vector> {
        if v.len() != self.cols {
            return Err(TensorError::dim(self.cols, v.len()));
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            out.push(row.iter().zip(v.iter()).map(|(a, b)| a * b).sum());
        }
        Ok(Vector::from(out))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// In-place scaling.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Consumes the matrix and returns a flat [`Vector`] (row-major order).
    pub fn into_vector(self) -> Vector {
        Vector::from(self.data)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_sizes() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.shape(), (3, 3));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_incompatible_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = Vector::from(vec![1.0, 1.0]);
        assert_eq!(a.matvec(&v).unwrap().as_slice(), &[3.0, 7.0]);
        assert!(a.matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 1.0);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn rows_views() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    fn into_vector_flattens_row_major() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.into_vector().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
