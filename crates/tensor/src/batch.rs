//! Contiguous gradient arena and the fused aggregation kernels built on it.
//!
//! The paper's hot path aggregates `n` gradients of dimension `d` every
//! synchronous round, and its whole pitch is that Byzantine resilience can be
//! cheap: Multi-Krum/Bulyan must keep up with plain averaging. A
//! `Vec<Vector>` stores each gradient in its own heap allocation, so every
//! coordinate-wise kernel chases `n` pointers per coordinate and every
//! distance kernel loses the prefetcher between rows. [`GradientBatch`]
//! instead packs the whole round into a single row-major `n×d` buffer:
//!
//! * rows (gradients) are cheap contiguous slices ([`GradientBatch::row`]),
//! * the pairwise-distance kernel computes only the upper triangle — each
//!   unordered pair exactly once — into a flat [`DistanceMatrix`],
//! * coordinate-wise order statistics (median, trimmed mean, MeaMed,
//!   Bulyan's second phase) run fused over column blocks. At worker-count
//!   row counts (`n ≤ 32`) each block is processed as lane-major tiles of
//!   W = 8–16 columns through a branch-free [`crate::sortnet`] selection
//!   network — every compare–exchange is an elementwise min/max over a
//!   whole lane, after a NaN → `+∞` canonicalisation pre-pass that keeps
//!   the scalar kernels' NaN policy intact. Larger batches fall back to the
//!   scalar quickselect kernels (`select_nth_unstable` over a reused
//!   per-column gather).
//!
//! All kernels keep the paper's non-finite policy: corrupt gradients map to
//! `+∞` distance and are never selected while enough finite candidates exist.

use crate::sortnet::{SelectionNetwork, MAX_NETWORK_N};
use crate::stats::{mean_of_closest_to_median_sorted, median_of_scratch, SMALL_SORT};
use crate::{ops, Result, TensorError, Vector};
use rayon::prelude::*;
use std::ops::Range;

/// Minimum number of f32 element operations a kernel must perform before it
/// dispatches to rayon.
///
/// Calibrated against the fixed dispatch cost (thread spawn + chunking,
/// tens of µs) versus roughly 1 ns per element operation: below ~2×10⁵
/// element ops the dispatch overhead dominates the measurement and distorts
/// the cost model's linear-in-`d` rescaling, so kernels stay sequential.
/// Every parallel gate in the workspace compares its *actual* element-op
/// count against this one constant (pairs·d for the distance kernel, n·d for
/// coordinate kernels, |active|² for score re-ranking) so the calibration is
/// applied to the work really being dispatched.
pub const PARALLEL_MIN_WORK: usize = 200_000;

/// Columns per transpose tile in the fused coordinate kernels. At the
/// paper's n = 19 a block tile is `19 × 512 × 4 B ≈ 38 KiB` — comfortably
/// L1/L2-resident, so the per-coordinate gather never leaves cache.
const COLUMN_BLOCK: usize = 512;

/// Lane width of the vertical selection-network kernels: columns processed
/// side by side as `[f32; W]` rows of a lane-major tile. Sixteen f32 lanes
/// are one AVX-512 register or two AVX2/NEON registers — wide enough to
/// saturate the vector units, while the tile (`n × 16 × 4 B ≈ 1.2 KiB` at
/// the paper's n = 19) stays L1-resident.
const WIDE_LANES: usize = 16;

/// Narrow lane width for ragged tails: a residual group of ≤ 8 columns runs
/// through the 8-lane monomorphisation instead of padding half a wide tile.
const NARROW_LANES: usize = 8;

/// Columns per tile of the sharded partial-distance kernel. Each pair reads
/// two `4096 × 4 B = 16 KiB` row slices — together a third of L1 — and the
/// whole tile across all rows (`19 × 16 KiB ≈ 304 KiB` at the paper's n)
/// stays L2-resident while every pair revisits it, which is where the
/// blocked kernel's speedup over the full-row walk comes from.
pub(crate) const DISTANCE_BLOCK: usize = 4096;

/// A round of gradients stored contiguously, row-major `n × d`.
///
/// ```
/// use agg_tensor::batch::GradientBatch;
/// use agg_tensor::Vector;
/// let batch = GradientBatch::from_vectors(&[
///     Vector::from(vec![1.0, 2.0]),
///     Vector::from(vec![3.0, 6.0]),
/// ])
/// .unwrap();
/// assert_eq!(batch.n(), 2);
/// assert_eq!(batch.row(1), &[3.0, 6.0]);
/// assert_eq!(batch.coordinate_mean().unwrap().as_slice(), &[2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBatch {
    /// Row-major `n × d` storage.
    data: Vec<f32>,
    n: usize,
    d: usize,
}

impl GradientBatch {
    /// Creates an empty batch that will accept rows of dimension `d`.
    pub fn new(d: usize) -> Self {
        GradientBatch { data: Vec::new(), n: 0, d }
    }

    /// Creates an empty batch of dimension `d` with capacity for `rows` rows.
    pub fn with_capacity(d: usize, rows: usize) -> Self {
        GradientBatch { data: Vec::with_capacity(d.saturating_mul(rows)), n: 0, d }
    }

    /// Packs a slice of vectors into a contiguous batch (one copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty slice and
    /// [`TensorError::DimensionMismatch`] when the vectors disagree on
    /// length.
    pub fn from_vectors(vectors: &[Vector]) -> Result<Self> {
        let Some(first) = vectors.first() else {
            return Err(TensorError::EmptyInput("GradientBatch::from_vectors"));
        };
        let mut batch = GradientBatch::with_capacity(first.len(), vectors.len());
        for v in vectors {
            batch.push_row(v.as_slice())?;
        }
        Ok(batch)
    }

    /// Appends one gradient row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when `row` does not match
    /// the batch dimension.
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.d {
            return Err(TensorError::dim(self.d, row.len()));
        }
        self.data.extend_from_slice(row);
        self.n += 1;
        Ok(())
    }

    /// Appends one zero-initialised row and hands it to `fill` to write in
    /// place — the allocation-free way to deliver a gradient straight into
    /// the arena (transports scatter packet payloads, samplers draw random
    /// rounds) without materialising an intermediate `Vector`.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut [f32])) {
        let start = self.data.len();
        self.data.resize(start + self.d, 0.0);
        self.n += 1;
        fill(&mut self.data[start..]);
    }

    /// Drops all rows but keeps the allocation, ready for the next round's
    /// refill. Round-based callers pair this with [`GradientBatch::push_row`]
    /// / [`GradientBatch::push_row_with`] so one arena is reused for the whole
    /// run instead of allocating `n × d` per round.
    pub fn clear(&mut self) {
        self.data.clear();
        self.n = 0;
    }

    /// Resizes the batch to exactly `rows` rows (new rows zero-filled),
    /// reusing the allocation. Slot-addressed writers (`row_mut` /
    /// `rows_mut`) use this to lay out one row per producer before a round.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.d, 0.0);
        self.n = rows;
    }

    /// Keeps only the rows whose flag is `true`, compacting the survivors in
    /// place (order preserved, no reallocation). Used after a lossy round:
    /// every worker owns one slot, then undelivered slots are squeezed out.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.n()`.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.n, "one keep flag per row");
        let d = self.d;
        let mut kept = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                if i != kept && d > 0 {
                    self.data.copy_within(i * d..(i + 1) * d, kept * d);
                }
                kept += 1;
            }
        }
        self.data.truncate(kept * d);
        self.n = kept;
    }

    /// Number of gradients in the batch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Gradient dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Returns `true` when the batch holds no gradients.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The whole arena as one flat slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.d..i * self.d + self.d]
    }

    /// Iterator over all rows in submission order.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.n).map(move |i| self.row(i))
    }

    /// Row `i` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.d..i * self.d + self.d]
    }

    /// All rows as disjoint mutable slices, in row order — the handles a
    /// parallel round hands out so every producer writes its own slot
    /// concurrently.
    pub fn rows_mut(&mut self) -> Vec<&mut [f32]> {
        if self.d == 0 {
            let mut out = Vec::with_capacity(self.n);
            out.resize_with(self.n, Default::default);
            return out;
        }
        self.data.chunks_exact_mut(self.d).collect()
    }

    /// Copies row `i` out into an owned [`Vector`].
    pub fn row_vector(&self, i: usize) -> Vector {
        Vector::from(self.row(i))
    }

    /// Upper-triangular pairwise squared-distance matrix.
    ///
    /// Each unordered pair `(i, j)` is computed exactly once — the O(n²·d)
    /// kernel that dominates Multi-Krum's cost and that Bulyan reuses across
    /// its selection iterations. Distances involving non-finite coordinates
    /// map to `+∞` so corrupt gradients are never preferred by any score
    /// built on top. Parallel over pairs when `pairs·d` clears
    /// [`PARALLEL_MIN_WORK`].
    pub fn pairwise_squared_distances(&self) -> DistanceMatrix {
        let n = self.n;
        let pair_count = n.saturating_sub(1) * n / 2;
        let pair_dist = |(i, j): (usize, usize)| -> f32 {
            let dist = ops::squared_distance(self.row(i), self.row(j));
            if dist.is_finite() {
                dist
            } else {
                f32::INFINITY
            }
        };
        // Enumerating i then j > i writes the flat triangle in index order.
        let pairs = (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)));
        let data: Vec<f32> = if pair_count.saturating_mul(self.d) >= PARALLEL_MIN_WORK {
            pairs.collect::<Vec<_>>().into_par_iter().map(pair_dist).collect()
        } else {
            pairs.map(pair_dist).collect()
        };
        DistanceMatrix { n, data }
    }

    /// Raw per-pair partial squared distances over the column range `cols`:
    /// entry `(i, j)` is `Σ_{c ∈ cols} (row_i[c] − row_j[c])²`.
    ///
    /// This is the sharded half of the distance decomposition: squared L2
    /// distances are sums over disjoint coordinate ranges, so accumulating
    /// one partial matrix per shard (in fixed shard order — see
    /// [`DistanceMatrix::accumulate`]) reproduces the full-dimension matrix
    /// exactly, up to floating-point reassociation. Unlike
    /// [`GradientBatch::pairwise_squared_distances`] the partials are *raw*:
    /// non-finite sums are left in place (they stay non-finite through any
    /// accumulation) and the caller maps them to `+∞` once, after the
    /// cross-shard reduce, via [`DistanceMatrix::map_non_finite_to_infinity`].
    ///
    /// The kernel is column-blocked (all pairs revisit one L2-resident tile
    /// before moving on) with a sixteen-lane inner loop, and deliberately
    /// sequential: the sharded aggregator parallelises across shards, and a
    /// deterministic per-shard kernel is what makes the round bit-identical
    /// under any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `cols` is not contained in `0..self.dim()`.
    pub fn pairwise_squared_distance_partials(&self, cols: Range<usize>) -> DistanceMatrix {
        self.check_cols(&cols);
        let n = self.n;
        let pair_count = n.saturating_sub(1) * n / 2;
        let mut data = vec![0.0f32; pair_count];
        let mut start = cols.start;
        while start < cols.end {
            let end = (start + DISTANCE_BLOCK).min(cols.end);
            let mut p = 0usize;
            for i in 0..n {
                let a = &self.row(i)[start..end];
                for j in (i + 1)..n {
                    data[p] += ops::squared_distance_wide(a, &self.row(j)[start..end]);
                    p += 1;
                }
            }
            start = end;
        }
        DistanceMatrix { n, data }
    }

    /// A view of the column range `cols`, exposing the same fused coordinate
    /// kernels restricted to those columns. This is how the sharded
    /// aggregation layer runs one kernel invocation per shard without
    /// copying the arena.
    ///
    /// # Panics
    ///
    /// Panics when `cols` is not contained in `0..self.dim()`.
    pub fn columns(&self, cols: Range<usize>) -> BatchColumns<'_> {
        self.check_cols(&cols);
        BatchColumns { batch: self, cols }
    }

    /// Validates a column range against the batch dimension.
    fn check_cols(&self, cols: &Range<usize>) {
        assert!(
            cols.start <= cols.end && cols.end <= self.d,
            "column range {}..{} out of range for dimension {}",
            cols.start,
            cols.end,
            self.d
        );
    }

    /// Coordinate-wise mean of all rows. NaN coordinates poison the mean,
    /// matching plain averaging's declared non-resilience.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch.
    pub fn coordinate_mean(&self) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_blocks(None, false, "coordinate_mean", 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise mean of the given rows (clone-free selection
    /// averaging: Multi-Krum averages its `m` selected gradients without
    /// materialising them).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty selection and
    /// [`TensorError::IndexOutOfBounds`] for an invalid row index.
    pub fn mean_of_rows(&self, rows: &[usize]) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_blocks(Some(rows), false, "mean_of_rows", 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise mean that skips NaN (lost) coordinates; a coordinate
    /// that is NaN in every row becomes `0.0` (no update). `±∞` coordinates
    /// participate, exactly like the slice-wise `nan_mean`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch.
    pub fn coordinate_nan_mean(&self) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_blocks(None, true, "coordinate_nan_mean", 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise median (NaN-tolerant) of all rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch or a
    /// coordinate that is NaN in every row.
    pub fn coordinate_median(&self) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.median_impl(None, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise median (NaN-tolerant) restricted to `rows`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_median`], plus
    /// [`TensorError::IndexOutOfBounds`] for an invalid row index.
    pub fn coordinate_median_of_rows(&self, rows: &[usize]) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.median_impl(Some(rows), 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise sample standard deviation over the finite values of
    /// each column (0 for fewer than two finite values).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch.
    pub fn coordinate_std(&self) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.column_reduce(None, "coordinate_std", 0..self.d, &mut out, || {
            let mut finite: Vec<f32> = Vec::new();
            move |column: &mut Vec<f32>| {
                finite.clear();
                finite.extend(column.iter().copied().filter(|x| x.is_finite()));
                if finite.len() < 2 {
                    return Ok(0.0);
                }
                let mean = finite.iter().sum::<f32>() / finite.len() as f32;
                let var = finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
                    / (finite.len() - 1) as f32;
                Ok(var.sqrt())
            }
        })?;
        Ok(Vector::from(out))
    }

    /// Coordinate-wise trimmed mean: drops the `trim` smallest and `trim`
    /// largest finite values per coordinate and averages the rest. NaN
    /// values are dropped before trimming; a coordinate left with too few
    /// values falls back to the median of its remaining finite values.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch or a
    /// coordinate that is NaN in every row.
    pub fn coordinate_trimmed_mean(&self, trim: usize) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.trimmed_mean_impl(trim, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    fn trimmed_mean_impl(&self, trim: usize, cols: Range<usize>, out: &mut [f32]) -> Result<()> {
        let m = self.n;
        if m == 0 {
            return Err(TensorError::EmptyInput("coordinate_trimmed_mean"));
        }
        if m > MAX_NETWORK_N {
            return self.trimmed_mean_quickselect(trim, cols, out);
        }
        let full = SelectionNetwork::sorting_cached(m);
        // NaN-free tiles have all m values in play: either the kept middle
        // window, or — when the trim swallows everything — the median
        // positions of the fallback.
        let fast = if m > 2 * trim {
            SelectionNetwork::selecting_cached(m, trim..m - trim)
        } else {
            SelectionNetwork::selecting_cached(m, (m - 1) / 2..m / 2 + 1)
        };
        self.network_reduce(None, "coordinate_trimmed_mean", cols, out, full, fast, || {
            move |lane: &SortedLane<'_>| {
                let k = lane.finite;
                if k == 0 {
                    return Err(TensorError::EmptyInput("coordinate_trimmed_mean"));
                }
                if k <= 2 * trim {
                    // Fallback: median of whatever finite values remain.
                    return Ok(lane.prefix_median(k));
                }
                let mut sum = 0.0f32;
                for p in trim..k - trim {
                    sum += lane.get(p);
                }
                Ok(sum / (k - 2 * trim) as f32)
            }
        })
    }

    /// The scalar quickselect trimmed mean: the fallback for batches of more
    /// than [`MAX_NETWORK_N`] rows, kept publicly callable (on the full
    /// column range) as the perf baseline of the `selection_networks`
    /// criterion group.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_trimmed_mean`].
    pub fn coordinate_trimmed_mean_quickselect(&self, trim: usize) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.trimmed_mean_quickselect(trim, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    fn trimmed_mean_quickselect(
        &self,
        trim: usize,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        self.column_reduce(None, "coordinate_trimmed_mean", cols, out, || {
            move |column: &mut Vec<f32>| {
                column.retain(|x| !x.is_nan());
                let len = column.len();
                if len <= 2 * trim {
                    // Fallback: median of whatever finite values remain
                    // (errors when the whole column was NaN).
                    if column.is_empty() {
                        return Err(TensorError::EmptyInput("coordinate_trimmed_mean"));
                    }
                    return median_of_scratch(column);
                }
                if trim > 0 {
                    let cmp = |a: &f32, b: &f32| a.total_cmp(b);
                    if len <= SMALL_SORT {
                        // Worker-count columns: one insertion-regime sort is
                        // cheaper than selection machinery.
                        column.sort_unstable_by(cmp);
                    } else {
                        // Two partial selections bracket the kept middle:
                        // the `trim` smallest land in front, the `trim`
                        // largest at the back — no full sort.
                        column.select_nth_unstable_by(trim - 1, cmp);
                        let tail = &mut column[trim..];
                        let keep = tail.len() - trim;
                        tail.select_nth_unstable_by(keep - 1, cmp);
                    }
                }
                let kept = &column[trim..len - trim];
                Ok(kept.iter().sum::<f32>() / kept.len() as f32)
            }
        })
    }

    /// For every coordinate: the mean of the `keep` values closest to the
    /// coordinate-wise median (MeaMed, and — restricted to the selected rows
    /// — Bulyan's second phase). Non-finite values rank as infinitely far
    /// from the median, so they are only averaged when fewer than `keep`
    /// finite values exist. `keep` is clamped into `1..=rows`.
    ///
    /// Tie behaviour: when two values are exactly equidistant from the
    /// median at the window boundary, the smaller value wins. (The pre-arena
    /// kernels did not agree with each other here — MeaMed kept the earlier
    /// submission, Bulyan's unstable selection picked arbitrarily — so the
    /// choice is deliberate and deterministic rather than order-dependent.)
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty batch or a
    /// coordinate that is NaN in every row.
    pub fn mean_around_median(&self, keep: usize) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_around_median_impl(None, keep, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// [`GradientBatch::mean_around_median`] restricted to `rows`.
    ///
    /// # Errors
    ///
    /// Same conditions, plus [`TensorError::IndexOutOfBounds`] for an
    /// invalid row index.
    pub fn mean_around_median_of_rows(&self, rows: &[usize], keep: usize) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_around_median_impl(Some(rows), keep, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    fn mean_around_median_impl(
        &self,
        rows: Option<&[usize]>,
        keep: usize,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        let m = rows.map_or(self.n, <[usize]>::len);
        if m == 0 {
            return Err(TensorError::EmptyInput("mean_around_median"));
        }
        if m > MAX_NETWORK_N {
            return self.mean_around_median_quickselect(rows, keep, cols, out);
        }
        // The window can reach anywhere in the column (MeaMed keeps n − f
        // values), so the network path needs the full sorted order on both
        // the NaN-carrying and NaN-free tiles.
        let full = SelectionNetwork::sorting_cached(m);
        self.network_reduce(rows, "mean_around_median", cols, out, full, full, || {
            let mut sorted: Vec<f32> = Vec::with_capacity(m);
            move |lane: &SortedLane<'_>| {
                let k = lane.finite;
                if k == 0 {
                    return Err(TensorError::EmptyInput("mean_around_median"));
                }
                sorted.clear();
                sorted.extend((0..k).map(|p| lane.get(p)));
                Ok(mean_of_closest_to_median_sorted(&sorted, m, keep))
            }
        })
    }

    /// The scalar sort-and-walk mean-around-median over the full column
    /// range: the fallback for batches of more than [`MAX_NETWORK_N`] rows,
    /// kept publicly callable as the perf baseline of the
    /// `selection_networks` criterion group.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::mean_around_median`].
    pub fn coordinate_mean_around_median_quickselect(&self, keep: usize) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.mean_around_median_quickselect(None, keep, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    /// The scalar sort-and-walk mean-around-median: the fallback for batches
    /// of more than [`MAX_NETWORK_N`] rows.
    ///
    /// One small sort serves both the median and the closest-to-median
    /// selection (the window kernel itself is
    /// [`mean_of_closest_to_median_sorted`], shared with the network path).
    fn mean_around_median_quickselect(
        &self,
        rows: Option<&[usize]>,
        keep: usize,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        self.column_reduce(rows, "mean_around_median", cols, out, || {
            let mut finite: Vec<f32> = Vec::new();
            move |column: &mut Vec<f32>| {
                finite.clear();
                finite.extend(column.iter().copied().filter(|x| !x.is_nan()));
                if finite.is_empty() {
                    return Err(TensorError::EmptyInput("mean_around_median"));
                }
                finite.sort_unstable_by(f32::total_cmp);
                Ok(mean_of_closest_to_median_sorted(&finite, column.len(), keep))
            }
        })
    }

    fn median_impl(
        &self,
        rows: Option<&[usize]>,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        let m = rows.map_or(self.n, <[usize]>::len);
        if m == 0 {
            return Err(TensorError::EmptyInput("coordinate_median"));
        }
        if m > MAX_NETWORK_N {
            return self.median_quickselect(rows, cols, out);
        }
        let full = SelectionNetwork::sorting_cached(m);
        let fast = SelectionNetwork::selecting_cached(m, (m - 1) / 2..m / 2 + 1);
        self.network_reduce(rows, "coordinate_median", cols, out, full, fast, || {
            move |lane: &SortedLane<'_>| {
                let k = lane.finite;
                if k == 0 {
                    return Err(TensorError::EmptyInput("coordinate_median"));
                }
                Ok(lane.prefix_median(k))
            }
        })
    }

    /// The scalar quickselect median: the fallback for batches of more than
    /// [`MAX_NETWORK_N`] rows, kept publicly callable (on the full column
    /// range) as the perf baseline of the `selection_networks` criterion
    /// group.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_median`].
    pub fn coordinate_median_quickselect(&self) -> Result<Vector> {
        let mut out = vec![0.0f32; self.d];
        self.median_quickselect(None, 0..self.d, &mut out)?;
        Ok(Vector::from(out))
    }

    fn median_quickselect(
        &self,
        rows: Option<&[usize]>,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        self.column_reduce(rows, "coordinate_median", cols, out, || {
            move |column: &mut Vec<f32>| {
                column.retain(|x| !x.is_nan());
                if column.is_empty() {
                    return Err(TensorError::EmptyInput("coordinate_median"));
                }
                median_of_scratch(column)
            }
        })
    }

    /// Validates an optional row subset, returning the effective row count.
    fn check_rows(&self, rows: Option<&[usize]>, label: &'static str) -> Result<usize> {
        let m = rows.map_or(self.n, <[usize]>::len);
        if m == 0 {
            return Err(TensorError::EmptyInput(label));
        }
        if let Some(rows) = rows {
            for &r in rows {
                if r >= self.n {
                    return Err(TensorError::IndexOutOfBounds { index: r, size: self.n });
                }
            }
        }
        Ok(m)
    }

    /// Column ranges of at most [`COLUMN_BLOCK`] columns covering `cols`.
    ///
    /// Blocks snap to the global [`COLUMN_BLOCK`] grid rather than to
    /// `cols.start`: a range starting off-grid (shard boundaries land
    /// anywhere) takes one short leading block and every block after it is
    /// grid-aligned — so the network kernels' lane tiles, which snap to the
    /// same grid, pay their short-leading-tile realignment once per range
    /// instead of once per block.
    fn column_blocks(&self, cols: &Range<usize>) -> Vec<Range<usize>> {
        let mut blocks = Vec::new();
        let mut start = cols.start;
        while start < cols.end {
            let end = ((start / COLUMN_BLOCK + 1) * COLUMN_BLOCK).min(cols.end);
            blocks.push(start..end);
            start = end;
        }
        blocks
    }

    /// Pairs each column block with its slice of `out`, in block order, so
    /// block-parallel drivers write results straight into the caller's
    /// buffer instead of materialising per-block vectors and concatenating
    /// (the concatenation copy was pure overhead, and it compounded per
    /// shard in the sharded tier).
    fn block_chunks(blocks: Vec<Range<usize>>, out: &mut [f32]) -> Vec<(Range<usize>, &mut [f32])> {
        let mut chunks = Vec::with_capacity(blocks.len());
        let mut rest = out;
        for block in blocks {
            let (head, tail) = rest.split_at_mut(block.len());
            chunks.push((block, head));
            rest = tail;
        }
        chunks
    }

    /// Fused mean kernels: streams every row over each column block once,
    /// accumulating straight into the caller's output slice (no
    /// per-coordinate gather at all).
    ///
    /// Below the parallel gate the block machinery (range bookkeeping,
    /// chunked output, rayon dispatch) is pure overhead for a kernel this
    /// trivially fused, so small batches take a single-pass fast path over
    /// the whole range. Both paths add each column in the same row order,
    /// so they are bit-identical.
    fn mean_blocks(
        &self,
        rows: Option<&[usize]>,
        skip_nan: bool,
        label: &'static str,
        cols: Range<usize>,
        out: &mut [f32],
    ) -> Result<()> {
        let m = self.check_rows(rows, label)?;
        let width = cols.len();
        debug_assert_eq!(out.len(), width, "output slice must cover the column range");
        let run = |(range, acc): (Range<usize>, &mut [f32])| {
            acc.fill(0.0);
            let mut count = vec![0u32; if skip_nan { range.len() } else { 0 }];
            let mut add_row = |row: &[f32]| {
                let slice = &row[range.clone()];
                if skip_nan {
                    for ((a, c), &v) in acc.iter_mut().zip(count.iter_mut()).zip(slice) {
                        if !v.is_nan() {
                            *a += v;
                            *c += 1;
                        }
                    }
                } else {
                    for (a, &v) in acc.iter_mut().zip(slice) {
                        *a += v;
                    }
                }
            };
            match rows {
                None => (0..self.n).for_each(|r| add_row(self.row(r))),
                Some(rows) => rows.iter().for_each(|&r| add_row(self.row(r))),
            }
            if skip_nan {
                for (a, &c) in acc.iter_mut().zip(&count) {
                    *a = if c == 0 { 0.0 } else { *a / c as f32 };
                }
            } else {
                let scale = 1.0 / m as f32;
                acc.iter_mut().for_each(|a| *a *= scale);
            }
        };
        if m.saturating_mul(width) < PARALLEL_MIN_WORK {
            // Single pass over the whole range, skipping the block split.
            run((cols, out));
            return Ok(());
        }
        let chunks = Self::block_chunks(self.column_blocks(&cols), out);
        let _: Vec<()> = chunks.into_par_iter().map(run).collect();
        Ok(())
    }

    /// Fused per-coordinate reduction driver.
    ///
    /// Every column of a block is gathered straight from the arena into a
    /// reused scratch buffer and reduced by the kernel. At worker-count row
    /// counts the gather's strided reads stay cache-resident — consecutive
    /// columns re-walk the same `m` cache lines, so each 64-byte line serves
    /// 16 columns — which measured faster than the former
    /// transpose-into-a-tile pass (one extra full write+read of the block
    /// that bought nothing the gather did not already have). `make_kernel`
    /// is called once per block so kernels can own per-thread scratch;
    /// blocks run in parallel when `rows·d` clears [`PARALLEL_MIN_WORK`].
    fn column_reduce<K, M>(
        &self,
        rows: Option<&[usize]>,
        label: &'static str,
        cols: Range<usize>,
        out: &mut [f32],
        make_kernel: M,
    ) -> Result<()>
    where
        K: FnMut(&mut Vec<f32>) -> Result<f32>,
        M: Fn() -> K + Sync,
    {
        let m = self.check_rows(rows, label)?;
        let width = cols.len();
        debug_assert_eq!(out.len(), width, "output slice must cover the column range");
        let run = |(range, dst): (Range<usize>, &mut [f32])| -> Result<()> {
            let mut kernel = make_kernel();
            let mut column: Vec<f32> = Vec::with_capacity(m);
            for (j, slot) in range.zip(dst.iter_mut()) {
                column.clear();
                match rows {
                    None => column.extend((0..self.n).map(|r| self.data[r * self.d + j])),
                    Some(rows) => column.extend(rows.iter().map(|&r| self.data[r * self.d + j])),
                }
                *slot = kernel(&mut column)?;
            }
            Ok(())
        };
        let chunks = Self::block_chunks(self.column_blocks(&cols), out);
        let parts: Vec<Result<()>> = if m.saturating_mul(width) >= PARALLEL_MIN_WORK {
            chunks.into_par_iter().map(run).collect()
        } else {
            chunks.into_iter().map(run).collect()
        };
        parts.into_iter().collect()
    }

    /// Vertical selection-network reduction driver (the `n ≤ 32` fast path
    /// of the order-statistic kernels).
    ///
    /// Each column block is processed as lane-major tiles of
    /// [`WIDE_LANES`] columns (ragged tails of ≤ [`NARROW_LANES`] columns
    /// take the narrow monomorphisation): the gather pre-pass copies each
    /// row's slice into the tile, canonicalising NaN to `+∞` and counting
    /// the replacements per lane, then one network execution sorts every
    /// lane at once with branch-free min/max. NaN-free tiles — the
    /// overwhelmingly common case — run the pruned `fast` network; a tile
    /// carrying any NaN runs the `full` sorting network so per-lane order
    /// statistics relative to the finite count stay exact. Per-column
    /// results depend only on that column's values (each lane is sorted
    /// independently and `kernel` sees one lane at a time), so the output
    /// is bit-identical under any column blocking, lane grouping or thread
    /// count — which is what keeps sharded and unsharded aggregation
    /// bitwise equal.
    ///
    /// `kernel` receives each lane as a [`SortedLane`] (sorted positions
    /// plus the lane's non-NaN count); `make_kernel` is called once per
    /// block so kernels can own per-thread scratch, exactly like
    /// [`GradientBatch::column_reduce`].
    #[allow(clippy::too_many_arguments)]
    fn network_reduce<K, M>(
        &self,
        rows: Option<&[usize]>,
        label: &'static str,
        cols: Range<usize>,
        out: &mut [f32],
        full: &SelectionNetwork,
        fast: &SelectionNetwork,
        make_kernel: M,
    ) -> Result<()>
    where
        K: FnMut(&SortedLane<'_>) -> Result<f32>,
        M: Fn() -> K + Sync,
    {
        let m = self.check_rows(rows, label)?;
        let width = cols.len();
        debug_assert!(m <= MAX_NETWORK_N);
        debug_assert_eq!(out.len(), width, "output slice must cover the column range");
        let run = |(range, dst): (Range<usize>, &mut [f32])| -> Result<()> {
            let mut kernel = make_kernel();
            let mut tile = vec![0.0f32; m * WIDE_LANES];
            let mut start = range.start;
            let mut done = 0usize;
            while start < range.end {
                // Tiles snap to the global W-column grid rather than to the
                // range start: a shard or block boundary can land anywhere,
                // and an off-grid tile makes every row gather straddle two
                // cache lines (measured ~4% on the whole kernel). One short
                // leading tile per off-grid range restores alignment for
                // everything that follows.
                let grid_next = (start / WIDE_LANES + 1) * WIDE_LANES;
                let width = range.end.min(grid_next) - start;
                let slot = &mut dst[done..done + width];
                if width > NARROW_LANES {
                    self.network_tile::<WIDE_LANES, K>(
                        rows,
                        m,
                        start,
                        &mut tile,
                        full,
                        fast,
                        &mut kernel,
                        slot,
                    )?;
                } else {
                    self.network_tile::<NARROW_LANES, K>(
                        rows,
                        m,
                        start,
                        &mut tile[..m * NARROW_LANES],
                        full,
                        fast,
                        &mut kernel,
                        slot,
                    )?;
                }
                start += width;
                done += width;
            }
            Ok(())
        };
        let chunks = Self::block_chunks(self.column_blocks(&cols), out);
        let parts: Vec<Result<()>> = if m.saturating_mul(width) >= PARALLEL_MIN_WORK {
            chunks.into_par_iter().map(run).collect()
        } else {
            chunks.into_iter().map(run).collect()
        };
        parts.into_iter().collect()
    }

    /// Gathers, canonicalises, sorts and reduces one lane-major tile of
    /// `out.len() ≤ W` columns starting at `col0`, writing one result per
    /// column into `out`. See [`GradientBatch::network_reduce`].
    #[allow(clippy::too_many_arguments)]
    fn network_tile<const W: usize, K>(
        &self,
        rows: Option<&[usize]>,
        m: usize,
        col0: usize,
        tile: &mut [f32],
        full: &SelectionNetwork,
        fast: &SelectionNetwork,
        kernel: &mut K,
        out: &mut [f32],
    ) -> Result<()>
    where
        K: FnMut(&SortedLane<'_>) -> Result<f32>,
    {
        let width = out.len();
        debug_assert!(width <= W && tile.len() == m * W);
        let mut nan_counts = [0u32; W];
        {
            let mut gather = |slot: usize, row: &[f32]| {
                let src = &row[col0..col0 + width];
                let dst = &mut tile[slot * W..(slot + 1) * W];
                for w in 0..width {
                    let v = src[w];
                    let nan = v.is_nan();
                    nan_counts[w] += u32::from(nan);
                    dst[w] = if nan { f32::INFINITY } else { v };
                }
                // Padding lanes of a ragged tail ride through the network
                // as zeros and are never read back.
                dst[width..].fill(0.0);
            };
            match rows {
                None => (0..m).for_each(|r| gather(r, self.row(r))),
                Some(rows) => {
                    rows.iter().enumerate().for_each(|(slot, &r)| gather(slot, self.row(r)));
                }
            }
        }
        let net = if nan_counts[..width].iter().any(|&c| c > 0) { full } else { fast };
        net.apply_lanes::<W>(tile);
        for (w, slot) in out.iter_mut().enumerate() {
            let lane = SortedLane { tile, lanes: W, lane: w, finite: m - nan_counts[w] as usize };
            *slot = kernel(&lane)?;
        }
        Ok(())
    }
}

/// One sorted column inside a lane-major network tile: position `p` of the
/// sorted order lives at `tile[p * lanes + lane]`. Canonicalised NaNs
/// (`+∞`) occupy the tail, so the prefix `0..finite` is exactly the sorted
/// non-NaN multiset of the original column.
struct SortedLane<'a> {
    tile: &'a [f32],
    lanes: usize,
    lane: usize,
    /// Number of non-NaN values in this column (`k`); order statistics are
    /// taken relative to this, never the padded row count.
    finite: usize,
}

impl SortedLane<'_> {
    /// The `p`-th smallest value of the column.
    #[inline]
    fn get(&self, p: usize) -> f32 {
        self.tile[p * self.lanes + self.lane]
    }

    /// Median of the sorted prefix `0..k` (midpoint convention for even
    /// `k`, matching [`median_of_scratch`]).
    #[inline]
    fn prefix_median(&self, k: usize) -> f32 {
        if k % 2 == 1 {
            self.get(k / 2)
        } else {
            0.5 * (self.get(k / 2 - 1) + self.get(k / 2))
        }
    }
}

/// A borrowed view of one contiguous column range of a [`GradientBatch`],
/// exposing the fused coordinate kernels restricted to those columns.
///
/// Produced by [`GradientBatch::columns`]. This is the per-shard kernel
/// surface of the sharded aggregation layer: every coordinate-wise rule runs
/// one invocation per shard on such a view, and the distance-based rules use
/// [`BatchColumns::distance_partials`] for their per-shard contribution to
/// the global distance matrix. Each method returns a vector with one entry
/// per column of the view, in column order, computed exactly as the
/// full-width kernel would compute those columns (the per-column reductions
/// are independent, so restricting the range is bit-identical).
#[derive(Debug, Clone)]
pub struct BatchColumns<'a> {
    batch: &'a GradientBatch,
    cols: Range<usize>,
}

impl BatchColumns<'_> {
    /// The column range this view covers.
    pub fn range(&self) -> Range<usize> {
        self.cols.clone()
    }

    /// Number of columns in the view.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Allocates an output buffer of the view's width, runs `fill` into it
    /// and wraps the result (the convenience path behind every
    /// `Vector`-returning kernel on this view).
    fn collect(&self, fill: impl FnOnce(&mut [f32]) -> Result<()>) -> Result<Vector> {
        let mut out = vec![0.0f32; self.cols.len()];
        fill(&mut out)?;
        Ok(Vector::from(out))
    }

    /// Validates a caller-provided output slice against the view's width.
    fn check_out(&self, out: &[f32]) -> Result<()> {
        if out.len() != self.cols.len() {
            return Err(TensorError::dim(self.cols.len(), out.len()));
        }
        Ok(())
    }

    /// Coordinate-wise mean over these columns; `rows` optionally restricts
    /// the reduction to a row subset (selection averaging).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_mean`] /
    /// [`GradientBatch::mean_of_rows`].
    pub fn mean(&self, rows: Option<&[usize]>) -> Result<Vector> {
        self.collect(|out| self.mean_into(rows, out))
    }

    /// [`BatchColumns::mean`] written into `out` (one slot per column of the
    /// view) — the zero-copy path a sharded aggregator uses to place every
    /// shard's output directly into the final update buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchColumns::mean`], plus
    /// [`TensorError::DimensionMismatch`] when `out` does not match the
    /// view's width.
    pub fn mean_into(&self, rows: Option<&[usize]>, out: &mut [f32]) -> Result<()> {
        self.check_out(out)?;
        let label = if rows.is_some() { "mean_of_rows" } else { "coordinate_mean" };
        self.batch.mean_blocks(rows, false, label, self.cols.clone(), out)
    }

    /// NaN-skipping coordinate-wise mean over these columns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_nan_mean`].
    pub fn nan_mean(&self) -> Result<Vector> {
        self.collect(|out| self.nan_mean_into(out))
    }

    /// [`BatchColumns::nan_mean`] written into `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchColumns::nan_mean`], plus
    /// [`TensorError::DimensionMismatch`] on a mis-sized `out`.
    pub fn nan_mean_into(&self, out: &mut [f32]) -> Result<()> {
        self.check_out(out)?;
        self.batch.mean_blocks(None, true, "coordinate_nan_mean", self.cols.clone(), out)
    }

    /// NaN-tolerant coordinate-wise median over these columns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_median`].
    pub fn median(&self, rows: Option<&[usize]>) -> Result<Vector> {
        self.collect(|out| self.median_into(rows, out))
    }

    /// [`BatchColumns::median`] written into `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchColumns::median`], plus
    /// [`TensorError::DimensionMismatch`] on a mis-sized `out`.
    pub fn median_into(&self, rows: Option<&[usize]>, out: &mut [f32]) -> Result<()> {
        self.check_out(out)?;
        self.batch.median_impl(rows, self.cols.clone(), out)
    }

    /// Coordinate-wise trimmed mean over these columns.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::coordinate_trimmed_mean`].
    pub fn trimmed_mean(&self, trim: usize) -> Result<Vector> {
        self.collect(|out| self.trimmed_mean_into(trim, out))
    }

    /// [`BatchColumns::trimmed_mean`] written into `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchColumns::trimmed_mean`], plus
    /// [`TensorError::DimensionMismatch`] on a mis-sized `out`.
    pub fn trimmed_mean_into(&self, trim: usize, out: &mut [f32]) -> Result<()> {
        self.check_out(out)?;
        self.batch.trimmed_mean_impl(trim, self.cols.clone(), out)
    }

    /// Mean of the `keep` values closest to the coordinate-wise median, over
    /// these columns (MeaMed / Bulyan phase 2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GradientBatch::mean_around_median`].
    pub fn mean_around_median(&self, rows: Option<&[usize]>, keep: usize) -> Result<Vector> {
        self.collect(|out| self.mean_around_median_into(rows, keep, out))
    }

    /// [`BatchColumns::mean_around_median`] written into `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchColumns::mean_around_median`], plus
    /// [`TensorError::DimensionMismatch`] on a mis-sized `out`.
    pub fn mean_around_median_into(
        &self,
        rows: Option<&[usize]>,
        keep: usize,
        out: &mut [f32],
    ) -> Result<()> {
        self.check_out(out)?;
        self.batch.mean_around_median_impl(rows, keep, self.cols.clone(), out)
    }

    /// Raw per-pair partial squared distances over these columns (see
    /// [`GradientBatch::pairwise_squared_distance_partials`]).
    pub fn distance_partials(&self) -> DistanceMatrix {
        self.batch.pairwise_squared_distance_partials(self.cols.clone())
    }
}

/// Flat, upper-triangular pairwise squared-distance matrix.
///
/// Stores only the `n·(n−1)/2` distances above the diagonal; `get(i, j)`
/// serves both orders and the zero diagonal. Produced by
/// [`GradientBatch::pairwise_squared_distances`] and shared by Multi-Krum
/// and Bulyan (the paper's key optimisation: compute distances once, re-rank
/// scores many times).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper triangle in row-major pair order: `(0,1), (0,2), …, (n−2,n−1)`.
    data: Vec<f32>,
}

impl DistanceMatrix {
    /// An all-zero matrix for `n` gradients — the identity of the per-shard
    /// partial reduce.
    pub fn zeros(n: usize) -> Self {
        DistanceMatrix { n, data: vec![0.0; n.saturating_sub(1) * n / 2] }
    }

    /// Wraps an already-computed flat upper triangle (row-major pair order).
    /// Used by the incremental accumulator in [`crate::streaming`], which
    /// assembles the triangle pair by pair as rows arrive.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `data` is not exactly `n·(n−1)/2` entries.
    pub(crate) fn from_triangle(n: usize, data: Vec<f32>) -> Self {
        debug_assert_eq!(data.len(), n.saturating_sub(1) * n / 2, "triangle length mismatch");
        DistanceMatrix { n, data }
    }

    /// Adds another matrix's pair entries into this one, element-wise.
    ///
    /// This is the cross-shard reduce of the distance decomposition: summing
    /// each shard's raw partial matrix (in fixed shard order, so the result
    /// is bit-reproducible under any thread count) yields the full-dimension
    /// squared distances. Call
    /// [`DistanceMatrix::map_non_finite_to_infinity`] once after the last
    /// shard to apply the non-finite policy.
    ///
    /// # Panics
    ///
    /// Panics when the two matrices disagree on `n`.
    pub fn accumulate(&mut self, other: &DistanceMatrix) {
        assert_eq!(self.n, other.n, "cannot accumulate distance matrices of different sizes");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Maps every non-finite pair distance to `+∞`, the paper's corrupt-
    /// gradient policy ([`GradientBatch::pairwise_squared_distances`] applies
    /// the same mapping per pair; raw partial sums defer it to here so NaN
    /// propagates faithfully through the cross-shard reduce).
    pub fn map_non_finite_to_infinity(&mut self) {
        for v in &mut self.data {
            if !v.is_finite() {
                *v = f32::INFINITY;
            }
        }
    }

    /// Number of gradients the matrix was built from.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (unordered) pairs.
    pub fn pair_count(&self) -> usize {
        self.data.len()
    }

    /// Squared distance between gradients `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.n && j < self.n, "distance index out of range");
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.data[lo * (2 * self.n - lo - 1) / 2 + (hi - lo - 1)]
    }

    /// Expands into the dense symmetric `n × n` representation (for callers
    /// and tests that want plain nested vectors).
    pub fn to_dense(&self) -> Vec<Vec<f32>> {
        (0..self.n).map(|i| (0..self.n).map(|j| self.get(i, j)).collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: &[&[f32]]) -> GradientBatch {
        let vs: Vec<Vector> = rows.iter().map(|r| Vector::from(*r)).collect();
        GradientBatch::from_vectors(&vs).unwrap()
    }

    #[test]
    fn construction_and_row_views() {
        let b = batch(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(b.n(), 3);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.row(1), &[3.0, 4.0]);
        assert_eq!(b.rows().count(), 3);
        assert_eq!(b.row_vector(2).as_slice(), &[5.0, 6.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn construction_rejects_empty_and_ragged() {
        assert!(GradientBatch::from_vectors(&[]).is_err());
        let mut b = GradientBatch::new(2);
        assert!(b.push_row(&[1.0, 2.0, 3.0]).is_err());
        assert!(b.push_row(&[1.0, 2.0]).is_ok());
        assert_eq!(b.n(), 1);
        assert!(GradientBatch::from_vectors(&[Vector::zeros(2), Vector::zeros(3)]).is_err());
    }

    #[test]
    fn triangular_distances_match_pairwise_definition() {
        let b = batch(&[&[0.0, 0.0], &[3.0, 4.0], &[0.0, 1.0]]);
        let m = b.pairwise_squared_distances();
        assert_eq!(m.n(), 3);
        assert_eq!(m.pair_count(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 25.0);
        assert_eq!(m.get(1, 0), 25.0);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 2), 18.0);
        let dense = m.to_dense();
        assert_eq!(dense[2][1], 18.0);
    }

    #[test]
    fn non_finite_distances_map_to_infinity() {
        let b = batch(&[&[f32::NAN], &[1.0], &[f32::INFINITY]]);
        let m = b.pairwise_squared_distances();
        assert_eq!(m.get(0, 1), f32::INFINITY);
        assert_eq!(m.get(1, 2), f32::INFINITY);
        assert_eq!(m.get(0, 2), f32::INFINITY);
    }

    #[test]
    fn means_match_slice_kernels() {
        let b = batch(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 90.0]]);
        assert_eq!(b.coordinate_mean().unwrap().as_slice(), &[2.0, 40.0]);
        assert_eq!(b.mean_of_rows(&[0, 2]).unwrap().as_slice(), &[2.0, 50.0]);
        assert!(b.mean_of_rows(&[]).is_err());
        assert!(b.mean_of_rows(&[7]).is_err());
    }

    #[test]
    fn nan_mean_skips_lost_coordinates() {
        let b = batch(&[&[1.0, f32::NAN], &[3.0, f32::NAN]]);
        assert_eq!(b.coordinate_nan_mean().unwrap().as_slice(), &[2.0, 0.0]);
        let poisoned = batch(&[&[1.0], &[f32::NAN]]);
        assert!(poisoned.coordinate_mean().unwrap()[0].is_nan());
        assert_eq!(poisoned.coordinate_nan_mean().unwrap()[0], 1.0);
    }

    #[test]
    fn median_matches_slice_kernel_and_errors_on_all_nan_column() {
        let b = batch(&[&[1.0, f32::NAN], &[3.0, 5.0], &[2.0, 7.0]]);
        assert_eq!(b.coordinate_median().unwrap().as_slice(), &[2.0, 6.0]);
        assert_eq!(b.coordinate_median_of_rows(&[1, 2]).unwrap().as_slice(), &[2.5, 6.0]);
        let all_nan = batch(&[&[f32::NAN], &[f32::NAN]]);
        assert!(all_nan.coordinate_median().is_err());
    }

    #[test]
    fn trimmed_mean_trims_and_falls_back() {
        let b = batch(&[&[100.0], &[1.0], &[2.0], &[3.0], &[-50.0]]);
        assert_eq!(b.coordinate_trimmed_mean(1).unwrap().as_slice(), &[2.0]);
        // trim too large for the finite count: falls back to the median.
        let nan_heavy = batch(&[&[f32::NAN], &[f32::NAN], &[3.0]]);
        assert_eq!(nan_heavy.coordinate_trimmed_mean(1).unwrap().as_slice(), &[3.0]);
        let all_nan = batch(&[&[f32::NAN]]);
        assert!(all_nan.coordinate_trimmed_mean(0).is_err());
    }

    #[test]
    fn mean_around_median_ignores_non_finite() {
        let b = batch(&[&[10.0], &[1.9], &[2.2], &[-5.0]]);
        let out = b.mean_around_median(2).unwrap();
        // median of {10, 1.9, 2.2, -5} = 2.05; two closest are 1.9 and 2.2.
        assert!((out[0] - 2.05).abs() < 1e-6);
        let corrupt = batch(&[&[f32::NAN], &[1.0], &[f32::INFINITY], &[3.0]]);
        assert_eq!(corrupt.mean_around_median(2).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn std_matches_slice_variance() {
        let b = batch(&[&[1.0, 0.0], &[3.0, 0.0]]);
        let s = b.coordinate_std().unwrap();
        assert!((s[0] - (2.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn large_batch_exercises_the_parallel_paths() {
        // n·d and pairs·d both clear PARALLEL_MIN_WORK.
        let n = 12;
        let d = 40_000;
        let mut b = GradientBatch::with_capacity(d, n);
        for i in 0..n {
            let row: Vec<f32> = (0..d).map(|c| ((i * 31 + c * 7) % 13) as f32).collect();
            b.push_row(&row).unwrap();
        }
        let mean = b.coordinate_mean().unwrap();
        let median = b.coordinate_median().unwrap();
        assert_eq!(mean.len(), d);
        assert_eq!(median.len(), d);
        let m = b.pairwise_squared_distances();
        // Spot-check symmetry against the direct slice kernel.
        for (i, j) in [(0usize, 1usize), (3, 9), (10, 11)] {
            let expected = ops::squared_distance(b.row(i), b.row(j));
            assert_eq!(m.get(i, j), expected);
            assert_eq!(m.get(j, i), expected);
        }
    }

    #[test]
    fn clear_and_push_row_with_reuse_the_allocation() {
        let mut b = GradientBatch::with_capacity(3, 2);
        b.push_row_with(|dst| dst.copy_from_slice(&[1.0, 2.0, 3.0]));
        b.push_row_with(|dst| dst.fill(7.0));
        assert_eq!(b.n(), 2);
        assert_eq!(b.row(1), &[7.0, 7.0, 7.0]);
        let ptr = b.as_slice().as_ptr();
        b.clear();
        assert!(b.is_empty());
        b.push_row_with(|dst| dst.fill(0.5));
        assert_eq!(b.n(), 1);
        assert_eq!(b.row(0), &[0.5, 0.5, 0.5]);
        assert_eq!(b.as_slice().as_ptr(), ptr, "clear() must keep the arena allocation");
    }

    #[test]
    fn slot_rows_and_retain_compact_in_order() {
        let mut b = GradientBatch::new(2);
        b.resize_rows(4);
        for (i, row) in b.rows_mut().into_iter().enumerate() {
            row.fill(i as f32);
        }
        b.row_mut(2).copy_from_slice(&[9.0, 9.0]);
        b.retain_rows(&[true, false, true, true]);
        assert_eq!(b.n(), 3);
        assert_eq!(b.row(0), &[0.0, 0.0]);
        assert_eq!(b.row(1), &[9.0, 9.0]);
        assert_eq!(b.row(2), &[3.0, 3.0]);
        b.retain_rows(&[false, false, false]);
        assert!(b.is_empty());
        // Resizing restores the slot layout for the next round.
        b.resize_rows(2);
        assert_eq!(b.n(), 2);
    }

    #[test]
    #[should_panic(expected = "one keep flag per row")]
    fn retain_rows_requires_one_flag_per_row() {
        let mut b = GradientBatch::new(1);
        b.resize_rows(2);
        b.retain_rows(&[true]);
    }

    #[test]
    fn column_views_match_full_width_kernels() {
        let b = batch(&[
            &[1.0, 10.0, 100.0, -1.0, f32::NAN],
            &[2.0, 20.0, 200.0, -2.0, 5.0],
            &[3.0, 90.0, 300.0, -3.0, 7.0],
            &[4.0, 40.0, 400.0, -4.0, 9.0],
        ]);
        let cols = 1..4;
        let view = b.columns(cols.clone());
        assert_eq!(view.width(), 3);
        assert_eq!(view.range(), cols.clone());
        let full = b.coordinate_mean().unwrap();
        assert_eq!(view.mean(None).unwrap().as_slice(), &full.as_slice()[cols.clone()]);
        let full = b.coordinate_nan_mean().unwrap();
        assert_eq!(view.nan_mean().unwrap().as_slice(), &full.as_slice()[cols.clone()]);
        let full = b.coordinate_median().unwrap();
        assert_eq!(view.median(None).unwrap().as_slice(), &full.as_slice()[cols.clone()]);
        let full = b.coordinate_trimmed_mean(1).unwrap();
        assert_eq!(view.trimmed_mean(1).unwrap().as_slice(), &full.as_slice()[cols.clone()]);
        let full = b.mean_around_median(2).unwrap();
        assert_eq!(
            view.mean_around_median(None, 2).unwrap().as_slice(),
            &full.as_slice()[cols.clone()]
        );
        let full = b.mean_of_rows(&[0, 2]).unwrap();
        assert_eq!(view.mean(Some(&[0, 2])).unwrap().as_slice(), &full.as_slice()[cols]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_view_rejects_out_of_range_columns() {
        batch(&[&[1.0, 2.0]]).columns(1..3);
    }

    #[test]
    fn shard_partials_reduce_to_the_full_distance_matrix() {
        let n = 7;
        let d = 9001; // not a multiple of the distance block or the lane count
        let mut b = GradientBatch::with_capacity(d, n);
        for i in 0..n {
            let row: Vec<f32> = (0..d).map(|c| ((i * 37 + c * 11) % 17) as f32 - 8.0).collect();
            b.push_row(&row).unwrap();
        }
        let full = b.pairwise_squared_distances();
        for shards in [1usize, 2, 3, 5] {
            let plan = crate::ShardPlan::new(d, shards).unwrap();
            let mut acc = DistanceMatrix::zeros(n);
            for range in plan.ranges() {
                acc.accumulate(&b.columns(range).distance_partials());
            }
            acc.map_non_finite_to_infinity();
            for i in 0..n {
                for j in 0..n {
                    let a = acc.get(i, j);
                    let e = full.get(i, j);
                    assert!(
                        (a - e).abs() <= 1e-4 * e.abs().max(1.0),
                        "shards={shards} ({i},{j}): {a} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_partials_propagate_non_finite_through_the_reduce() {
        let b = batch(&[&[f32::NAN, 1.0, 2.0], &[0.0, 1.0, 2.0], &[0.0, f32::INFINITY, 2.0]]);
        let plan = crate::ShardPlan::new(3, 3).unwrap();
        let mut acc = DistanceMatrix::zeros(3);
        for range in plan.ranges() {
            acc.accumulate(&b.columns(range).distance_partials());
        }
        acc.map_non_finite_to_infinity();
        assert_eq!(acc.get(0, 1), f32::INFINITY);
        assert_eq!(acc.get(0, 2), f32::INFINITY);
        assert_eq!(acc.get(1, 2), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn accumulate_rejects_mismatched_matrices() {
        DistanceMatrix::zeros(3).accumulate(&DistanceMatrix::zeros(4));
    }

    #[test]
    fn zero_dimension_batches_are_tolerated() {
        let mut b = batch(&[&[], &[]]);
        assert_eq!(b.dim(), 0);
        assert_eq!(b.coordinate_mean().unwrap().len(), 0);
        assert_eq!(b.pairwise_squared_distances().get(0, 1), 0.0);
        let rows = b.rows_mut();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.is_empty()));
    }
}
