//! Incremental pairwise-distance accumulation for streaming rounds.
//!
//! The batch kernels ([`GradientBatch::pairwise_squared_distances`] and the
//! sharded partial pipeline) assume every row is present before any distance
//! work starts. A streaming round inverts that: rows complete one at a time
//! as their packets drain off the wire, and the O(n²·d) distance work for a
//! row can start the moment the row is in — overlapping the remaining
//! ingest instead of waiting behind a barrier.
//!
//! [`StreamingDistances`] holds the per-pair running state between row
//! arrivals. Its contract is *bit-identity* with the batch pipeline it
//! replaces, which pins two things:
//!
//! - **Kernel choice.** [`Mode::Flat`] replays the unsharded path: one
//!   [`ops::squared_distance`] call per pair over the full rows, the exact
//!   four-lane kernel and summation order of
//!   [`GradientBatch::pairwise_squared_distances`]. [`Mode::Sharded`]
//!   replays the decomposed path: per-shard partial sums fed by
//!   [`ops::squared_distance_wide`] over [`DISTANCE_BLOCK`]-column tiles in
//!   ascending block order — the fold of
//!   [`GradientBatch::pairwise_squared_distance_partials`].
//! - **Reduce order.** f32 addition is non-associative, so the sharded mode
//!   keeps one accumulator per (shard, pair) and only folds across shards —
//!   in ascending shard order, starting from `0.0` — when the matrix is
//!   extracted, mirroring [`DistanceMatrix::accumulate`] over
//!   `DistanceMatrix::zeros`. Arrival order therefore never leaks into the
//!   result: each pair's value is a function of the two rows alone.
//!
//! Non-finite sums are left raw in the accumulators (NaN must propagate
//! through the cross-shard reduce exactly as in the batch path) and mapped
//! to `+∞` once at extraction, matching both batch kernels' published
//! policy.

use crate::batch::{DistanceMatrix, GradientBatch, DISTANCE_BLOCK};
use crate::shard::ShardPlan;
use crate::{ops, Result};

/// Which batch distance pipeline the accumulator replays bit-for-bit.
#[derive(Debug, Clone)]
enum Mode {
    /// The unsharded four-lane kernel of
    /// [`GradientBatch::pairwise_squared_distances`].
    Flat,
    /// The column-blocked sixteen-lane partial pipeline of
    /// [`GradientBatch::pairwise_squared_distance_partials`], folded across
    /// shards in plan order.
    Sharded(ShardPlan),
}

/// Incremental pairwise squared-distance state over a fixed set of `slots`
/// worker rows, fed one completed row at a time.
///
/// ```
/// use agg_tensor::batch::GradientBatch;
/// use agg_tensor::streaming::StreamingDistances;
/// use agg_tensor::Vector;
///
/// let batch = GradientBatch::from_vectors(&[
///     Vector::from(vec![0.0, 0.0]),
///     Vector::from(vec![3.0, 4.0]),
/// ])
/// .unwrap();
/// let mut acc = StreamingDistances::flat(2, 2);
/// acc.row_arrived(&batch, 1);
/// acc.row_arrived(&batch, 0);
/// let m = acc.matrix(&[0, 1]);
/// assert_eq!(m.get(0, 1), 25.0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDistances {
    slots: usize,
    dim: usize,
    mode: Mode,
    /// Accumulators, shard-major: `sums[s * pair_count + p]` where `p` is the
    /// flat upper-triangle pair index over the `slots` grid. Flat mode uses a
    /// single logical shard.
    sums: Vec<f32>,
    /// Slot ids in arrival order.
    arrived: Vec<usize>,
    /// One flag per slot: has the row completed this round?
    present: Vec<bool>,
}

impl StreamingDistances {
    /// Accumulator replaying the unsharded distance kernel over full rows.
    pub fn flat(slots: usize, dim: usize) -> Self {
        Self::with_mode(slots, dim, Mode::Flat)
    }

    /// Accumulator replaying the sharded partial pipeline over `shards`
    /// contiguous column ranges of a `dim`-dimensional row.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::EmptyInput`] when `shards == 0`
    /// (propagated from [`ShardPlan::new`]).
    pub fn sharded(slots: usize, dim: usize, shards: usize) -> Result<Self> {
        let plan = ShardPlan::new(dim, shards)?;
        Ok(Self::with_mode(slots, dim, Mode::Sharded(plan)))
    }

    fn with_mode(slots: usize, dim: usize, mode: Mode) -> Self {
        let pair_count = slots.saturating_sub(1) * slots / 2;
        let shard_count = match &mode {
            Mode::Flat => 1,
            Mode::Sharded(plan) => plan.shard_count(),
        };
        StreamingDistances {
            slots,
            dim,
            mode,
            sums: vec![0.0; shard_count * pair_count],
            arrived: Vec::with_capacity(slots),
            present: vec![false; slots],
        }
    }

    /// Number of worker slots the accumulator was sized for.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Clears all pair state for the next round, keeping the allocation.
    pub fn reset(&mut self) {
        self.sums.fill(0.0);
        self.arrived.clear();
        self.present.fill(false);
    }

    /// Slot ids in the order their rows completed this round.
    pub fn arrived(&self) -> &[usize] {
        &self.arrived
    }

    /// Whether `slot`'s row has completed this round.
    pub fn is_arrived(&self, slot: usize) -> bool {
        self.present.get(slot).copied().unwrap_or(false)
    }

    /// Flat upper-triangle index of the unordered slot pair `(lo, hi)`.
    #[inline]
    fn pair_index(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi && hi < self.slots);
        lo * (2 * self.slots - lo - 1) / 2 + (hi - lo - 1)
    }

    /// Folds the completed row in `batch.row(slot)` into the pair state
    /// against every previously arrived row — the per-row event handler of
    /// the streaming round. `batch` is the submission arena: it must hold one
    /// row per slot at the accumulator's dimension.
    ///
    /// The sharded walk is tile-ordered for cache warmth: the arriving row's
    /// [`DISTANCE_BLOCK`] slice stays register/L1-hot while every prior row's
    /// matching slice streams past it, and per (shard, pair) the blocks fold
    /// in ascending order — the exact left-fold of the batch partial kernel.
    ///
    /// # Panics
    ///
    /// Panics when the arena shape disagrees with the accumulator, `slot` is
    /// out of range, or the slot already arrived this round (the assembler
    /// layer deduplicates packets, so a second completion event for one slot
    /// is a caller bug).
    pub fn row_arrived(&mut self, batch: &GradientBatch, slot: usize) {
        assert_eq!(batch.n(), self.slots, "arena row count must match slots");
        assert_eq!(batch.dim(), self.dim, "arena dimension must match");
        assert!(slot < self.slots, "slot {slot} out of range");
        assert!(!self.present[slot], "slot {slot} already arrived this round");
        let pair_count = self.slots.saturating_sub(1) * self.slots / 2;
        match &self.mode {
            Mode::Flat => {
                let row = batch.row(slot);
                for &prior in &self.arrived {
                    let (lo, hi) = if prior < slot { (prior, slot) } else { (slot, prior) };
                    let p = self.pair_index(lo, hi);
                    self.sums[p] = ops::squared_distance(row, batch.row(prior));
                }
            }
            Mode::Sharded(plan) => {
                for s in 0..plan.shard_count() {
                    let cols = plan.range(s);
                    let base = s * pair_count;
                    let mut start = cols.start;
                    while start < cols.end {
                        let end = (start + DISTANCE_BLOCK).min(cols.end);
                        let a = &batch.row(slot)[start..end];
                        for &prior in &self.arrived {
                            let (lo, hi) = if prior < slot { (prior, slot) } else { (slot, prior) };
                            let p = self.pair_index(lo, hi);
                            self.sums[base + p] +=
                                ops::squared_distance_wide(a, &batch.row(prior)[start..end]);
                        }
                        start = end;
                    }
                }
            }
        }
        self.present[slot] = true;
        self.arrived.push(slot);
    }

    /// Extracts the distance matrix over the compacted row set `keep` —
    /// strictly ascending slot ids, each of which must have arrived. Entry
    /// `(a, b)` of the result is the full-dimension squared distance between
    /// slots `keep[a]` and `keep[b]`: per-shard accumulators folded in
    /// ascending shard order from `0.0` (bitwise the batch pipeline's
    /// cross-shard reduce), then non-finite sums mapped to `+∞`.
    ///
    /// # Panics
    ///
    /// Panics when `keep` is not strictly ascending or contains a slot that
    /// has not arrived.
    pub fn matrix(&self, keep: &[usize]) -> DistanceMatrix {
        for w in keep.windows(2) {
            assert!(w[0] < w[1], "keep slots must be strictly ascending");
        }
        for &slot in keep {
            assert!(self.is_arrived(slot), "slot {slot} has not arrived");
        }
        let shard_count = match &self.mode {
            Mode::Flat => 1,
            Mode::Sharded(plan) => plan.shard_count(),
        };
        let pair_count = self.slots.saturating_sub(1) * self.slots / 2;
        let m = keep.len();
        let mut data = Vec::with_capacity(m.saturating_sub(1) * m / 2);
        for a in 0..m {
            for b in (a + 1)..m {
                let p = self.pair_index(keep[a], keep[b]);
                let mut total = 0.0f32;
                for s in 0..shard_count {
                    total += self.sums[s * pair_count + p];
                }
                data.push(if total.is_finite() { total } else { f32::INFINITY });
            }
        }
        DistanceMatrix::from_triangle(m, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_vector, seeded_rng};
    use crate::Vector;

    fn random_batch(n: usize, d: usize, seed: u64) -> GradientBatch {
        let mut rng = seeded_rng(seed);
        let vs: Vec<Vector> = (0..n).map(|_| gaussian_vector(&mut rng, d, 0.0, 1.0)).collect();
        GradientBatch::from_vectors(&vs).unwrap()
    }

    /// Deterministic Fisher–Yates shuffle of `0..n` driven by splitmix64.
    fn arrival_order(n: usize, seed: usize) -> Vec<usize> {
        let mut state = seed as u64 ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    fn assert_matrices_bit_identical(a: &DistanceMatrix, b: &DistanceMatrix) {
        assert_eq!(a.n(), b.n());
        for i in 0..a.n() {
            for j in 0..a.n() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    b.get(i, j).to_bits(),
                    "pair ({i}, {j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn flat_mode_matches_batch_kernel_for_any_arrival_order() {
        let batch = random_batch(9, 301, 7);
        for seed in 0..6 {
            let mut acc = StreamingDistances::flat(9, 301);
            let order = arrival_order(9, seed);
            for &slot in &order {
                if !acc.is_arrived(slot) {
                    acc.row_arrived(&batch, slot);
                }
            }
            let keep: Vec<usize> = (0..9).collect();
            assert_matrices_bit_identical(&acc.matrix(&keep), &batch.pairwise_squared_distances());
        }
    }

    #[test]
    fn sharded_mode_matches_partial_fold_bitwise() {
        let batch = random_batch(11, 5000, 13);
        for shards in [1usize, 3, 4, 7] {
            let plan = ShardPlan::new(5000, shards).unwrap();
            let mut expected = DistanceMatrix::zeros(11);
            for range in plan.ranges() {
                expected.accumulate(&batch.pairwise_squared_distance_partials(range));
            }
            expected.map_non_finite_to_infinity();

            let mut acc = StreamingDistances::sharded(11, 5000, shards).unwrap();
            for &slot in &arrival_order(11, shards) {
                if !acc.is_arrived(slot) {
                    acc.row_arrived(&batch, slot);
                }
            }
            let keep: Vec<usize> = (0..11).collect();
            assert_matrices_bit_identical(&acc.matrix(&keep), &expected);
        }
    }

    #[test]
    fn non_finite_rows_map_to_infinity_like_the_batch_kernels() {
        let mut batch = random_batch(6, 400, 3);
        batch.row_mut(2)[17] = f32::NAN;
        batch.row_mut(4)[399] = f32::INFINITY;

        let mut flat = StreamingDistances::flat(6, 400);
        let mut sharded = StreamingDistances::sharded(6, 400, 3).unwrap();
        for slot in [5, 2, 0, 4, 1, 3] {
            flat.row_arrived(&batch, slot);
            sharded.row_arrived(&batch, slot);
        }
        let keep: Vec<usize> = (0..6).collect();
        assert_matrices_bit_identical(&flat.matrix(&keep), &batch.pairwise_squared_distances());
        for other in [0usize, 1, 3, 5] {
            assert_eq!(sharded.matrix(&keep).get(2, other), f32::INFINITY);
            assert_eq!(sharded.matrix(&keep).get(4, other), f32::INFINITY);
        }
    }

    #[test]
    fn submatrix_extraction_matches_compacted_batch() {
        let batch = random_batch(10, 2600, 21);
        let keep = [0usize, 2, 3, 6, 9];
        let kept: Vec<Vector> = keep.iter().map(|&i| batch.row_vector(i)).collect();
        let compacted = GradientBatch::from_vectors(&kept).unwrap();

        // Flat mode against the unsharded kernel on the compacted batch.
        let mut flat = StreamingDistances::flat(10, 2600);
        for slot in [9, 0, 6, 3, 2] {
            flat.row_arrived(&batch, slot);
        }
        assert_matrices_bit_identical(&flat.matrix(&keep), &compacted.pairwise_squared_distances());

        // Sharded mode against the partial fold on the compacted batch.
        let plan = ShardPlan::new(2600, 4).unwrap();
        let mut expected = DistanceMatrix::zeros(5);
        for range in plan.ranges() {
            expected.accumulate(&compacted.pairwise_squared_distance_partials(range));
        }
        expected.map_non_finite_to_infinity();
        let mut sharded = StreamingDistances::sharded(10, 2600, 4).unwrap();
        for slot in [3, 9, 2, 0, 6] {
            sharded.row_arrived(&batch, slot);
        }
        assert_matrices_bit_identical(&sharded.matrix(&keep), &expected);
    }

    #[test]
    fn reset_clears_state_for_the_next_round() {
        let batch = random_batch(5, 64, 2);
        let mut acc = StreamingDistances::sharded(5, 64, 2).unwrap();
        for slot in 0..5 {
            acc.row_arrived(&batch, slot);
        }
        acc.reset();
        assert!(acc.arrived().is_empty());
        let batch2 = random_batch(5, 64, 99);
        for slot in [4, 1, 0, 3, 2] {
            acc.row_arrived(&batch2, slot);
        }
        let keep: Vec<usize> = (0..5).collect();
        let plan = ShardPlan::new(64, 2).unwrap();
        let mut expected = DistanceMatrix::zeros(5);
        for range in plan.ranges() {
            expected.accumulate(&batch2.pairwise_squared_distance_partials(range));
        }
        expected.map_non_finite_to_infinity();
        assert_matrices_bit_identical(&acc.matrix(&keep), &expected);
    }

    #[test]
    #[should_panic(expected = "already arrived")]
    fn double_arrival_is_a_caller_bug() {
        let batch = random_batch(3, 8, 1);
        let mut acc = StreamingDistances::flat(3, 8);
        acc.row_arrived(&batch, 1);
        acc.row_arrived(&batch, 1);
    }

    #[test]
    #[should_panic(expected = "has not arrived")]
    fn matrix_over_missing_slot_panics() {
        let batch = random_batch(3, 8, 1);
        let mut acc = StreamingDistances::flat(3, 8);
        acc.row_arrived(&batch, 0);
        let _ = acc.matrix(&[0, 2]);
    }
}
