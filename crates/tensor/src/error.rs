//! Error type for tensor operations.

use thiserror::Error;

/// Errors produced by shape-checked tensor, matrix and vector operations.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands were expected to have the same length.
    #[error("dimension mismatch: expected length {expected}, got {actual}")]
    DimensionMismatch {
        /// Length required by the operation.
        expected: usize,
        /// Length that was actually provided.
        actual: usize,
    },

    /// Two operands were expected to have compatible shapes.
    #[error("shape mismatch: {left:?} is not compatible with {right:?} for {op}")]
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },

    /// An operation that requires a non-empty input received an empty one.
    #[error("empty input for {0}")]
    EmptyInput(&'static str),

    /// An index was out of bounds.
    #[error("index {index} out of bounds for axis of size {size}")]
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Size of the axis being indexed.
        size: usize,
    },

    /// A reshape would change the number of elements.
    #[error("cannot reshape {elements} elements into shape {shape:?}")]
    InvalidReshape {
        /// Number of elements in the source.
        elements: usize,
        /// Requested target shape.
        shape: Vec<usize>,
    },
}

impl TensorError {
    /// Convenience constructor for a length mismatch.
    pub fn dim(expected: usize, actual: usize) -> Self {
        TensorError::DimensionMismatch { expected, actual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::dim(3, 4);
        assert_eq!(e.to_string(), "dimension mismatch: expected length 3, got 4");
        let e = TensorError::EmptyInput("median");
        assert!(e.to_string().contains("median"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
