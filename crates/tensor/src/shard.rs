//! Contiguous coordinate sharding of a `d`-dimensional model.
//!
//! The paper's deployment splits the model across multiple parameter servers;
//! [`ShardPlan`] is the one canonical description of that split every layer
//! of the stack shares: the aggregation kernels slice a
//! [`crate::GradientBatch`] into per-shard column ranges, the network layer
//! routes packet payloads to shard assemblers by coordinate offset, and the
//! parameter-server runtime places one server job per shard. Keeping the
//! partition arithmetic in a single type guarantees that a coordinate the
//! wire layer routed to shard `s` is the same coordinate the kernels
//! aggregate in shard `s`.
//!
//! The partition is contiguous and near-equal: with `d = q·S + r`, the first
//! `r` shards hold `q + 1` coordinates and the rest hold `q`. Contiguity is
//! what makes the decomposition exact for the distance-based rules — a
//! squared L2 distance is the sum of per-shard partial sums over disjoint
//! coordinate ranges.

use crate::{Result, TensorError};
use std::ops::Range;

/// A contiguous, near-equal partition of the coordinate range `0..d` into
/// `S` shards.
///
/// ```
/// use agg_tensor::shard::ShardPlan;
/// let plan = ShardPlan::new(10, 3).unwrap();
/// assert_eq!(plan.range(0), 0..4);
/// assert_eq!(plan.range(1), 4..7);
/// assert_eq!(plan.range(2), 7..10);
/// assert_eq!(plan.shard_of(6), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard boundaries: `starts[s]..starts[s + 1]` is shard `s`'s coordinate
    /// range; `starts.len() == shard_count + 1`, `starts[0] == 0`, and the
    /// last entry is `d`.
    starts: Vec<usize>,
}

impl ShardPlan {
    /// Partitions `0..d` into `shards` contiguous near-equal ranges.
    ///
    /// Shards may be empty when `shards > d`; every coordinate still belongs
    /// to exactly one shard.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] when `shards` is zero.
    pub fn new(d: usize, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(TensorError::EmptyInput("ShardPlan::new"));
        }
        let base = d / shards;
        let extra = d % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        starts.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            starts.push(at);
        }
        Ok(ShardPlan { starts })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total coordinate count `d` the plan covers.
    pub fn dimension(&self) -> usize {
        *self.starts.last().expect("starts is never empty")
    }

    /// The coordinate range of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shard_count()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.shard_count(), "shard {s} out of range");
        self.starts[s]..self.starts[s + 1]
    }

    /// Iterator over every shard's coordinate range, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shard_count()).map(move |s| self.range(s))
    }

    /// The shard holding coordinate `coordinate`.
    ///
    /// # Panics
    ///
    /// Panics if `coordinate >= self.dimension()`.
    pub fn shard_of(&self, coordinate: usize) -> usize {
        assert!(
            coordinate < self.dimension(),
            "coordinate {coordinate} out of range for dimension {}",
            self.dimension()
        );
        // partition_point returns the count of starts <= coordinate; the
        // owning shard is one before that boundary.
        self.starts.partition_point(|&s| s <= coordinate) - 1
    }
}

/// A contiguous partition of the worker range `0..n` into groups of at most
/// `g` workers — the worker-side counterpart of [`ShardPlan`], shared by the
/// hierarchical aggregation tier: the tree aggregator runs one GAR per group
/// over rows `range(group)` of the submission arena, the cluster placement
/// gives each group its own aggregator job, and the engine derives per-group
/// membership epochs from it. Keeping the partition arithmetic in one type
/// guarantees the worker the engine assigned to group `k` is the worker whose
/// rows group `k`'s aggregator reduces.
///
/// Unlike [`ShardPlan`] (near-equal split into a fixed shard count), a group
/// plan fixes the group *size*: every group holds exactly `g` workers except
/// the last, which holds the ragged remainder `n mod g` (when nonzero). The
/// group size is the unit the per-group kernels are tuned for
/// (`sortnet::MAX_NETWORK_N`), so it — not the group count — is the invariant
/// worth pinning.
///
/// ```
/// use agg_tensor::shard::GroupPlan;
/// let plan = GroupPlan::new(70, 32).unwrap();
/// assert_eq!(plan.group_count(), 3);
/// assert_eq!(plan.range(0), 0..32);
/// assert_eq!(plan.range(2), 64..70); // ragged last group
/// assert_eq!(plan.group_of(64), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    workers: usize,
    group_size: usize,
    /// Optional permuted placement: `assignment[w]` is the group of worker
    /// `w`. `None` is the identity (contiguous) placement. A permutation
    /// never changes the per-group *capacities* — every group holds exactly
    /// as many workers as its contiguous range — so downstream consumers of
    /// [`GroupPlan::sizes`] (the composed resilience bound, the per-group
    /// kernels, cluster placement) see the same shape either way; only
    /// *which* worker sits in which group moves.
    assignment: Option<Vec<usize>>,
}

impl GroupPlan {
    /// Partitions `0..workers` into `ceil(workers / group_size)` contiguous
    /// groups of `group_size` workers, the last group taking the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] when `workers` or `group_size` is
    /// zero.
    pub fn new(workers: usize, group_size: usize) -> Result<Self> {
        if workers == 0 || group_size == 0 {
            return Err(TensorError::EmptyInput("GroupPlan::new"));
        }
        Ok(GroupPlan { workers, group_size, assignment: None })
    }

    /// Number of groups, `ceil(workers / group_size)`.
    pub fn group_count(&self) -> usize {
        self.workers.div_ceil(self.group_size)
    }

    /// Total worker count `n` the plan covers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured (maximum) group size `g`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Replaces the placement with an explicit worker → group assignment.
    ///
    /// The assignment must be a *capacity-preserving* permutation of the
    /// contiguous placement: `assignment[w]` names worker `w`'s group, every
    /// group id must be in range, and each group must receive exactly as
    /// many workers as its contiguous range holds (`self.sizes()`). This is
    /// the invariant that lets the reshuffled plan drop into every existing
    /// consumer — group output buffers, per-group floors and cluster jobs
    /// are sized off `sizes()`, which a valid assignment cannot change.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] when the assignment's length does
    /// not match the worker count, names an out-of-range group, or changes
    /// any group's size.
    pub fn set_assignment(&mut self, assignment: Vec<usize>) -> Result<()> {
        if assignment.len() != self.workers {
            return Err(TensorError::EmptyInput("GroupPlan::set_assignment length"));
        }
        let groups = self.group_count();
        let mut counts = vec![0usize; groups];
        for &g in &assignment {
            if g >= groups {
                return Err(TensorError::EmptyInput("GroupPlan::set_assignment group id"));
            }
            counts[g] += 1;
        }
        if counts.iter().copied().ne(self.sizes()) {
            return Err(TensorError::EmptyInput("GroupPlan::set_assignment group sizes"));
        }
        self.assignment = Some(assignment);
        Ok(())
    }

    /// Builds a plan with an explicit placement in one step (see
    /// [`GroupPlan::set_assignment`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for a degenerate shape or an
    /// invalid assignment.
    pub fn with_assignment(
        workers: usize,
        group_size: usize,
        assignment: Vec<usize>,
    ) -> Result<Self> {
        let mut plan = GroupPlan::new(workers, group_size)?;
        plan.set_assignment(assignment)?;
        Ok(plan)
    }

    /// Reverts to the contiguous (identity) placement.
    pub fn clear_assignment(&mut self) {
        self.assignment = None;
    }

    /// The explicit worker → group assignment, when one is installed.
    pub fn assignment(&self) -> Option<&[usize]> {
        self.assignment.as_deref()
    }

    /// `true` when an explicit (possibly non-contiguous) placement is
    /// installed.
    pub fn is_permuted(&self) -> bool {
        self.assignment.is_some()
    }

    /// The worker ids of group `k`, in ascending id order — the
    /// assignment-aware counterpart of [`GroupPlan::range`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.group_count()`.
    pub fn members(&self, k: usize) -> Vec<usize> {
        match &self.assignment {
            None => self.range(k).collect(),
            Some(assignment) => {
                assert!(k < self.group_count(), "group {k} out of range");
                (0..self.workers).filter(|&w| assignment[w] == k).collect()
            }
        }
    }

    /// The worker-id range of group `k` under the *contiguous* placement.
    /// This is build-time layout arithmetic (buffer sizing, cluster
    /// placement, link topology); runtime consumers that must honor a
    /// reshuffled placement go through [`GroupPlan::group_of`] /
    /// [`GroupPlan::members`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.group_count()`.
    pub fn range(&self, k: usize) -> Range<usize> {
        assert!(k < self.group_count(), "group {k} out of range");
        let start = k * self.group_size;
        start..(start + self.group_size).min(self.workers)
    }

    /// Iterator over every group's worker range, in group order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.group_count()).map(move |k| self.range(k))
    }

    /// Iterator over every group's size, in group order. Invariant under
    /// reshuffles: an installed assignment is capacity-preserving by
    /// construction, so the sizes are always those of the contiguous layout.
    pub fn sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges().map(|r| r.len())
    }

    /// The group holding worker `worker`, honoring an installed assignment.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn group_of(&self, worker: usize) -> usize {
        assert!(worker < self.workers, "worker {worker} out of range for {} workers", self.workers);
        match &self.assignment {
            Some(assignment) => assignment[worker],
            None => worker / self.group_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_equal_contiguous_partition() {
        let plan = ShardPlan::new(10, 4).unwrap();
        assert_eq!(plan.shard_count(), 4);
        assert_eq!(plan.dimension(), 10);
        let ranges: Vec<_> = plan.ranges().collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        // Widths differ by at most one and cover everything exactly once.
        let total: usize = ranges.iter().map(std::ops::Range::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn single_shard_covers_everything() {
        let plan = ShardPlan::new(7, 1).unwrap();
        assert_eq!(plan.range(0), 0..7);
        assert_eq!(plan.shard_of(6), 0);
    }

    #[test]
    fn more_shards_than_coordinates_leaves_empty_shards() {
        let plan = ShardPlan::new(2, 5).unwrap();
        assert_eq!(plan.shard_count(), 5);
        assert_eq!(plan.range(0), 0..1);
        assert_eq!(plan.range(1), 1..2);
        assert!(plan.range(4).is_empty());
        assert_eq!(plan.shard_of(1), 1);
    }

    #[test]
    fn shard_of_agrees_with_ranges_everywhere() {
        for (d, s) in [(1usize, 1usize), (10, 3), (100, 7), (31, 31), (64, 2)] {
            let plan = ShardPlan::new(d, s).unwrap();
            for c in 0..d {
                let owner = plan.shard_of(c);
                assert!(plan.range(owner).contains(&c), "d={d} s={s} c={c}");
            }
        }
    }

    #[test]
    fn zero_dimension_and_zero_shards() {
        let plan = ShardPlan::new(0, 3).unwrap();
        assert_eq!(plan.dimension(), 0);
        assert!(plan.ranges().all(|r| r.is_empty()));
        assert!(ShardPlan::new(5, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_of_rejects_out_of_range_coordinates() {
        ShardPlan::new(4, 2).unwrap().shard_of(4);
    }

    #[test]
    fn group_plan_partitions_with_a_ragged_tail() {
        let plan = GroupPlan::new(70, 32).unwrap();
        assert_eq!(plan.group_count(), 3);
        assert_eq!(plan.workers(), 70);
        assert_eq!(plan.group_size(), 32);
        let ranges: Vec<_> = plan.ranges().collect();
        assert_eq!(ranges, vec![0..32, 32..64, 64..70]);
        assert_eq!(plan.sizes().collect::<Vec<_>>(), vec![32, 32, 6]);
        let total: usize = plan.sizes().sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn group_plan_exact_division_has_no_ragged_group() {
        let plan = GroupPlan::new(64, 32).unwrap();
        assert_eq!(plan.group_count(), 2);
        assert!(plan.sizes().all(|s| s == 32));
    }

    #[test]
    fn group_of_agrees_with_ranges_everywhere() {
        for (n, g) in [(1usize, 1usize), (19, 4), (70, 32), (1024, 32), (33, 32), (5, 7)] {
            let plan = GroupPlan::new(n, g).unwrap();
            for w in 0..n {
                let owner = plan.group_of(w);
                assert!(plan.range(owner).contains(&w), "n={n} g={g} w={w}");
            }
        }
    }

    #[test]
    fn fewer_workers_than_group_size_is_one_group() {
        let plan = GroupPlan::new(5, 32).unwrap();
        assert_eq!(plan.group_count(), 1);
        assert_eq!(plan.range(0), 0..5);
    }

    #[test]
    fn degenerate_group_plans_are_rejected() {
        assert!(GroupPlan::new(0, 4).is_err());
        assert!(GroupPlan::new(4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_of_rejects_out_of_range_workers() {
        GroupPlan::new(4, 2).unwrap().group_of(4);
    }

    #[test]
    fn assignment_permutes_placement_without_changing_capacities() {
        // 7 workers in groups of 3: contiguous sizes [3, 3, 1]. A strided
        // deal (0,1,2,0,1,2,0 would overfill group 0) honoring capacities:
        let assignment = vec![0, 1, 2, 0, 1, 0, 1];
        let plan = GroupPlan::with_assignment(7, 3, assignment.clone()).unwrap();
        assert!(plan.is_permuted());
        assert_eq!(plan.assignment(), Some(assignment.as_slice()));
        assert_eq!(plan.sizes().collect::<Vec<_>>(), vec![3, 3, 1]);
        for (w, &g) in assignment.iter().enumerate() {
            assert_eq!(plan.group_of(w), g);
        }
        assert_eq!(plan.members(0), vec![0, 3, 5]);
        assert_eq!(plan.members(1), vec![1, 4, 6]);
        assert_eq!(plan.members(2), vec![2]);
        // `range` stays the contiguous layout (buffer sizing).
        assert_eq!(plan.range(0), 0..3);
    }

    #[test]
    fn identity_assignment_matches_the_contiguous_placement() {
        let mut plan = GroupPlan::new(70, 32).unwrap();
        let identity: Vec<usize> = (0..70).map(|w| w / 32).collect();
        plan.set_assignment(identity).unwrap();
        let contiguous = GroupPlan::new(70, 32).unwrap();
        for w in 0..70 {
            assert_eq!(plan.group_of(w), contiguous.group_of(w));
        }
        for k in 0..plan.group_count() {
            assert_eq!(plan.members(k), contiguous.range(k).collect::<Vec<_>>());
        }
        plan.clear_assignment();
        assert!(!plan.is_permuted());
    }

    #[test]
    fn capacity_violating_assignments_are_rejected() {
        // Wrong length.
        assert!(GroupPlan::with_assignment(6, 3, vec![0, 1]).is_err());
        // Out-of-range group id.
        assert!(GroupPlan::with_assignment(6, 3, vec![0, 0, 0, 1, 1, 2]).is_err());
        // Right length, valid ids, wrong per-group counts (group 0 overfull).
        assert!(GroupPlan::with_assignment(6, 3, vec![0, 0, 0, 0, 1, 1]).is_err());
        // Ragged tail: group 2 holds 1 worker, not 2.
        assert!(GroupPlan::with_assignment(7, 3, vec![0, 0, 0, 1, 1, 2, 2]).is_err());
    }

    #[test]
    fn members_covers_every_worker_exactly_once() {
        let assignment = vec![0, 1, 0, 1, 2, 0, 1, 0, 1, 2];
        let plan = GroupPlan::with_assignment(10, 4, assignment).unwrap();
        let mut seen: Vec<usize> = (0..plan.group_count()).flat_map(|k| plan.members(k)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
