//! N-dimensional row-major tensors, used for image batches (N, C, H, W) and
//! convolution activations in `agg-nn`.

use crate::{Matrix, Result, TensorError, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense n-dimensional array of `f32` in row-major (C) order.
///
/// ```
/// use agg_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3, 4]);
/// assert_eq!(t.len(), 24);
/// assert_eq!(t.shape(), &[2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; len] }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the buffer length does not
    /// match the product of the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::InvalidReshape {
                elements: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element count changes.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::InvalidReshape {
                elements: self.data.len(),
                shape: shape.to_vec(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Returns a reshaped copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element count changes.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Tensor> {
        let mut t = self.clone();
        t.reshape(shape)?;
        Ok(t)
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] if the index rank differs
    /// from the tensor rank, or [`TensorError::IndexOutOfBounds`] when any
    /// coordinate exceeds its axis.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::dim(self.shape.len(), index.len()));
        }
        let mut off = 0;
        for (&i, &s) in index.iter().zip(self.shape.iter()) {
            if i >= s {
                return Err(TensorError::IndexOutOfBounds { index: i, size: s });
            }
            off = off * s + i;
        }
        Ok(off)
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// See [`Tensor::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// See [`Tensor::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Splits the leading axis, returning the `i`-th sub-tensor (a copy).
    ///
    /// For a batch tensor of shape `[N, C, H, W]` this returns sample `i`
    /// with shape `[C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `i` exceeds the leading
    /// axis, or [`TensorError::EmptyInput`] for a rank-0 tensor.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        if self.shape.is_empty() {
            return Err(TensorError::EmptyInput("index_axis0"));
        }
        let n = self.shape[0];
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, size: n });
        }
        let inner: usize = self.shape[1..].iter().product();
        let data = self.data[i * inner..(i + 1) * inner].to_vec();
        Tensor::from_vec(&self.shape[1..], data)
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(TensorError::EmptyInput("Tensor::stack"));
        }
        let inner_shape = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * parts[0].len());
        for p in parts {
            if p.shape != inner_shape {
                return Err(TensorError::ShapeMismatch {
                    left: inner_shape,
                    right: p.shape.clone(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&p.data);
        }
        let mut shape = Vec::with_capacity(inner_shape.len() + 1);
        shape.push(parts.len());
        shape.extend_from_slice(&inner_shape);
        Tensor::from_vec(&shape, data)
    }

    /// Consumes the tensor and returns a flat [`Vector`].
    pub fn into_vector(self) -> Vector {
        Vector::from(self.data)
    }

    /// Converts a rank-2 tensor into a [`Matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the rank is not 2.
    pub fn into_matrix(self) -> Result<Matrix> {
        if self.shape.len() != 2 {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: vec![0, 0],
                op: "into_matrix",
            });
        }
        Matrix::from_vec(self.shape[0], self.shape[1], self.data)
    }

    /// Elementwise map, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }
}

impl From<Vector> for Tensor {
    fn from(v: Vector) -> Self {
        let len = v.len();
        Tensor { shape: vec![len], data: v.into_inner() }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?})", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.ndim(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 5]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        t.reshape(&[3, 2]).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), 5.0);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|x| x as f32).collect()).unwrap();
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), 5.0);
        assert_eq!(t.get(&[1, 1, 1]).unwrap(), 7.0);
        assert!(t.get(&[2, 0, 0]).is_err());
        assert!(t.get(&[0, 0]).is_err());
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 9.0).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), 9.0);
    }

    #[test]
    fn index_axis0_and_stack_round_trip() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let a = t.index_axis0(0).unwrap();
        let b = t.index_axis0(1).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(b.as_slice(), &[3.0, 4.0, 5.0]);
        let restacked = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(restacked, t);
        assert!(t.index_axis0(2).is_err());
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn conversions() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = t.clone().into_matrix().unwrap();
        assert_eq!(m.get(1, 1), 4.0);
        let v = t.into_vector();
        assert_eq!(v.len(), 4);
        assert!(Tensor::zeros(&[2, 2, 2]).into_matrix().is_err());
        let back: Tensor = Vector::from(vec![1.0, 2.0]).into();
        assert_eq!(back.shape(), &[2]);
    }

    #[test]
    fn map_and_axpy() {
        let t = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 1.0]);
        let mut a = Tensor::zeros(&[2]);
        a.axpy(2.0, &t).unwrap();
        assert_eq!(a.as_slice(), &[2.0, -2.0]);
        assert!(a.axpy(1.0, &Tensor::zeros(&[3])).is_err());
    }
}
