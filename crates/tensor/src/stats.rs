//! Robust statistics kernels.
//!
//! These are the numeric building blocks of the paper's gradient aggregation
//! rules: coordinate-wise medians, trimmed means, selection of the `k` values
//! closest to a reference, and pairwise squared distances between gradients.
//!
//! All functions are careful about non-finite values: the paper stresses that
//! real malicious workers will send `NaN`/`±Inf` coordinates, so the kernels
//! either tolerate them (treat them as "infinitely far") or expose an explicit
//! policy.

use crate::{Result, TensorError, Vector};

/// Median of a slice, ignoring NaN values.
///
/// For an even count the midpoint (average of the two central values) is
/// returned, matching the conventional coordinate-wise median used by
/// Bulyan and the Median GAR.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] if `values` is empty or contains only
/// NaN values.
pub fn median(values: &[f32]) -> Result<f32> {
    let mut finite: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if finite.is_empty() {
        return Err(TensorError::EmptyInput("median"));
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let n = finite.len();
    if n % 2 == 1 {
        Ok(finite[n / 2])
    } else {
        Ok(0.5 * (finite[n / 2 - 1] + finite[n / 2]))
    }
}

/// Lower median of a slice (the ⌈n/2⌉-th smallest value), ignoring NaN.
///
/// Bulyan's theoretical analysis uses an order-statistic median; the lower
/// median keeps the output equal to one of the input values.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] if `values` is empty or all NaN.
pub fn lower_median(values: &[f32]) -> Result<f32> {
    let mut finite: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if finite.is_empty() {
        return Err(TensorError::EmptyInput("lower_median"));
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Ok(finite[(finite.len() - 1) / 2])
}

/// Mean of the `beta` values closest to `center` (in absolute difference).
///
/// This is the inner step of Bulyan: for each coordinate, average the
/// `m - 2f` values closest to the coordinate-wise median. Non-finite values
/// sort as infinitely far from the center so they are never selected unless
/// fewer than `beta` finite values exist.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] if `values` is empty, and
/// [`TensorError::DimensionMismatch`] if `beta` is zero or exceeds
/// `values.len()`.
pub fn mean_closest_to(values: &[f32], center: f32, beta: usize) -> Result<f32> {
    if values.is_empty() {
        return Err(TensorError::EmptyInput("mean_closest_to"));
    }
    if beta == 0 || beta > values.len() {
        return Err(TensorError::dim(values.len(), beta));
    }
    let mut keyed: Vec<(f32, f32)> = values
        .iter()
        .map(|&v| {
            let key = if v.is_finite() { (v - center).abs() } else { f32::INFINITY };
            (key, v)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let selected = &keyed[..beta];
    Ok(selected.iter().map(|(_, v)| v).sum::<f32>() / beta as f32)
}

/// Trimmed mean: drops the `trim` smallest and `trim` largest values and
/// averages the rest. NaN values are dropped before trimming.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] when nothing remains after trimming.
pub fn trimmed_mean(values: &[f32], trim: usize) -> Result<f32> {
    let mut finite: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if finite.len() <= 2 * trim {
        return Err(TensorError::EmptyInput("trimmed_mean"));
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let kept = &finite[trim..finite.len() - trim];
    Ok(kept.iter().sum::<f32>() / kept.len() as f32)
}

/// Arithmetic mean ignoring NaN values; returns `None` if all values are NaN
/// or the slice is empty.
pub fn nan_mean(values: &[f32]) -> Option<f32> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &v in values {
        if !v.is_nan() {
            sum += v;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f32)
    }
}

/// Full pairwise squared-distance matrix between `n` vectors, as dense
/// nested vectors.
///
/// Entry `(i, j)` holds `||v_i - v_j||²`. The matrix is symmetric with a zero
/// diagonal. This is a compatibility adapter over the single canonical
/// kernel, [`crate::batch::GradientBatch::pairwise_squared_distances`], which
/// computes each unordered pair exactly once into a flat upper triangle —
/// prefer that entry point on the hot path. Like the canonical kernel,
/// distances involving non-finite coordinates map to `+∞` so corrupt
/// gradients are never preferred by any score built on the matrix.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty input and
/// [`TensorError::DimensionMismatch`] if the vectors disagree on length.
pub fn pairwise_squared_distances(vectors: &[Vector]) -> Result<Vec<Vec<f32>>> {
    let batch = crate::batch::GradientBatch::from_vectors(vectors).map_err(|e| match e {
        TensorError::EmptyInput(_) => TensorError::EmptyInput("pairwise_squared_distances"),
        other => other,
    })?;
    Ok(batch.pairwise_squared_distances().to_dense())
}

/// Indices of the `k` smallest values in `values`, in ascending value order.
///
/// NaN values are ranked last (treated as `+∞`), which is exactly the
/// behaviour the robust GARs need: a gradient whose distance to every other
/// gradient is NaN must never be selected. Uses partial selection
/// (`select_nth_unstable`) so the cost is O(n + k log k) rather than a full
/// O(n log n) sort; ties break towards the lower index, matching the stable
/// sort this replaced.
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when `k > values.len()`.
pub fn k_smallest_indices(values: &[f32], k: usize) -> Result<Vec<usize>> {
    if k > values.len() {
        return Err(TensorError::dim(values.len(), k));
    }
    if k == 0 {
        return Ok(Vec::new());
    }
    let key = |i: usize| if values[i].is_nan() { f32::INFINITY } else { values[i] };
    let order = |a: &usize, b: &usize| key(*a).total_cmp(&key(*b)).then(a.cmp(b));
    let mut idx: Vec<usize> = (0..values.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, order);
        idx.truncate(k);
    }
    idx.sort_unstable_by(order);
    Ok(idx)
}

/// Coordinate-wise mean of a set of equally sized vectors.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty set and
/// [`TensorError::DimensionMismatch`] when lengths disagree.
pub fn coordinate_mean(vectors: &[Vector]) -> Result<Vector> {
    if vectors.is_empty() {
        return Err(TensorError::EmptyInput("coordinate_mean"));
    }
    let d = vectors[0].len();
    let mut acc = Vector::zeros(d);
    for v in vectors {
        if v.len() != d {
            return Err(TensorError::dim(d, v.len()));
        }
        acc.axpy(1.0, v)?;
    }
    acc.scale(1.0 / vectors.len() as f32);
    Ok(acc)
}

/// Coordinate-wise median of a set of equally sized vectors (NaN-tolerant).
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty set, a coordinate that is
/// NaN in every vector, and [`TensorError::DimensionMismatch`] when lengths
/// disagree.
pub fn coordinate_median(vectors: &[Vector]) -> Result<Vector> {
    if vectors.is_empty() {
        return Err(TensorError::EmptyInput("coordinate_median"));
    }
    let d = vectors[0].len();
    for v in vectors {
        if v.len() != d {
            return Err(TensorError::dim(d, v.len()));
        }
    }
    let mut out = Vec::with_capacity(d);
    // One scratch buffer reused across coordinates: the per-coordinate cost
    // is on the critical path of the Median GAR (and of Bulyan), so no
    // allocation or full sort per coordinate.
    let mut column: Vec<f32> = Vec::with_capacity(vectors.len());
    for c in 0..d {
        column.clear();
        column.extend(vectors.iter().map(|v| v[c]).filter(|x| !x.is_nan()));
        out.push(median_of_scratch(&mut column)?);
    }
    Ok(Vector::from(out))
}

/// Below this many elements an unstable sort (which degrades to insertion
/// sort) beats `select_nth_unstable`'s pivoting machinery, and one sort can
/// replace two selections. Gradient batches have one value per worker per
/// coordinate, so the per-coordinate kernels live almost entirely in this
/// regime.
pub(crate) const SMALL_SORT: usize = 32;

/// Median of a NaN-free scratch buffer using selection instead of a full
/// sort (one selection beats a sort when only the median is needed; kernels
/// that also need the neighbourhood of the median sort instead — see
/// `batch::mean_around_median`). The buffer is reordered in place.
pub(crate) fn median_of_scratch(column: &mut [f32]) -> Result<f32> {
    let k = column.len();
    if k == 0 {
        return Err(TensorError::EmptyInput("median"));
    }
    let cmp = |a: &f32, b: &f32| a.partial_cmp(b).expect("NaN filtered by caller");
    if k % 2 == 1 {
        let (_, mid, _) = column.select_nth_unstable_by(k / 2, cmp);
        Ok(*mid)
    } else {
        let (below, upper, _) = column.select_nth_unstable_by(k / 2, cmp);
        let upper = *upper;
        let lower = below.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        Ok(0.5 * (lower + upper))
    }
}

/// Mean of the values closest to the median of an already-sorted, NaN-free
/// column — the one closest-to-median window kernel shared by MeaMed and
/// Bulyan's second phase, on both the scalar and the selection-network
/// paths.
///
/// `sorted` holds the column's non-NaN values in ascending order (`±∞`
/// included — they rank infinitely far from the median and are only taken
/// when nothing better remains); `column_len` is the original column length
/// including NaN entries, which bounds the effective keep count exactly as
/// the historical kernels did. `|v − median|` is V-shaped over the sorted
/// buffer, so the window of closest values is contiguous and grows greedily
/// by a two-pointer walk; on ties at the window boundary the smaller value
/// wins (deliberately deterministic — the pre-arena kernels disagreed with
/// each other here).
///
/// When fewer than `keep` non-NaN values exist, the NaN submissions are
/// forced into the average (they rank infinitely far and only join when
/// nothing better remains), poisoning it — the caller decides whether that
/// is an error.
///
/// # Panics
///
/// Panics if `sorted` is empty (callers map the empty column to their own
/// error first).
pub(crate) fn mean_of_closest_to_median_sorted(
    sorted: &[f32],
    column_len: usize,
    keep: usize,
) -> f32 {
    let k = sorted.len();
    assert!(k > 0, "mean_of_closest_to_median_sorted needs at least one value");
    let center = if k % 2 == 1 { sorted[k / 2] } else { 0.5 * (sorted[k / 2 - 1] + sorted[k / 2]) };
    let keep_eff = keep.min(column_len).max(1);
    let take = keep_eff.min(k);
    let (mut l, mut r) = (k / 2, k / 2);
    let mut sum = 0.0f32;
    for _ in 0..take {
        let take_left = if l == 0 {
            false
        } else if r >= k {
            true
        } else {
            (sorted[l - 1] - center).abs() <= (sorted[r] - center).abs()
        };
        if take_left {
            l -= 1;
            sum += sorted[l];
        } else {
            sum += sorted[r];
            r += 1;
        }
    }
    if keep_eff > k {
        sum += f32::NAN;
    }
    sum / keep_eff as f32
}

/// Sample variance (unbiased, divide by `n - 1`) of a slice; 0 for fewer than
/// two finite values.
pub fn variance(values: &[f32]) -> f32 {
    let finite: Vec<f32> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.len() < 2 {
        return 0.0;
    }
    let mean = finite.iter().sum::<f32>() / finite.len() as f32;
    finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (finite.len() - 1) as f32
}

/// Coordinate-wise standard deviation across a set of vectors.
///
/// Used by the "little is enough"-style omniscient attack, which perturbs the
/// honest mean by a multiple of the per-coordinate standard deviation.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty set and
/// [`TensorError::DimensionMismatch`] when lengths disagree.
pub fn coordinate_std(vectors: &[Vector]) -> Result<Vector> {
    let rows: Vec<&[f32]> = vectors.iter().map(Vector::as_slice).collect();
    coordinate_std_of_rows(&rows)
}

/// [`coordinate_std`] over borrowed rows — the zero-copy variant used when
/// the gradients already live in a contiguous arena (or any slice storage)
/// and cloning them into `Vector`s would cost an `n·d` copy.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for an empty set and
/// [`TensorError::DimensionMismatch`] when lengths disagree.
pub fn coordinate_std_of_rows(rows: &[&[f32]]) -> Result<Vector> {
    if rows.is_empty() {
        return Err(TensorError::EmptyInput("coordinate_std"));
    }
    let d = rows[0].len();
    for r in rows {
        if r.len() != d {
            return Err(TensorError::dim(d, r.len()));
        }
    }
    let mut out = Vec::with_capacity(d);
    let mut column = Vec::with_capacity(rows.len());
    for c in 0..d {
        column.clear();
        column.extend(rows.iter().map(|r| r[c]));
        out.push(variance(&column).sqrt());
    }
    Ok(Vector::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn median_ignores_nan_and_rejects_empty() {
        assert_eq!(median(&[f32::NAN, 1.0, 3.0]).unwrap(), 2.0);
        assert!(median(&[]).is_err());
        assert!(median(&[f32::NAN]).is_err());
    }

    #[test]
    fn lower_median_is_an_input_value() {
        assert_eq!(lower_median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(lower_median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn mean_closest_selects_neighbours_of_center() {
        // center 2.0, closest two values are 1.9 and 2.2
        let v = [10.0, 1.9, 2.2, -5.0];
        let m = mean_closest_to(&v, 2.0, 2).unwrap();
        assert!((m - 2.05).abs() < 1e-6);
    }

    #[test]
    fn mean_closest_never_selects_non_finite_when_enough_finite() {
        let v = [f32::NAN, 1.0, f32::INFINITY, 3.0];
        let m = mean_closest_to(&v, 2.0, 2).unwrap();
        assert_eq!(m, 2.0);
    }

    #[test]
    fn mean_closest_validates_beta() {
        assert!(mean_closest_to(&[1.0], 0.0, 0).is_err());
        assert!(mean_closest_to(&[1.0], 0.0, 2).is_err());
        assert!(mean_closest_to(&[], 0.0, 1).is_err());
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let v = [100.0, 1.0, 2.0, 3.0, -50.0];
        assert_eq!(trimmed_mean(&v, 1).unwrap(), 2.0);
        assert!(trimmed_mean(&v, 2).is_ok());
        assert!(trimmed_mean(&v, 3).is_err());
    }

    #[test]
    fn nan_mean_behaviour() {
        assert_eq!(nan_mean(&[1.0, f32::NAN, 3.0]), Some(2.0));
        assert_eq!(nan_mean(&[f32::NAN]), None);
        assert_eq!(nan_mean(&[]), None);
    }

    #[test]
    fn pairwise_distances_symmetric_zero_diagonal() {
        let vs = vec![
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![3.0, 4.0]),
            Vector::from(vec![0.0, 1.0]),
        ];
        let d = pairwise_squared_distances(&vs).unwrap();
        assert_eq!(d[0][0], 0.0);
        assert_eq!(d[0][1], 25.0);
        assert_eq!(d[1][0], 25.0);
        assert_eq!(d[0][2], 1.0);
        assert!(pairwise_squared_distances(&[]).is_err());
    }

    #[test]
    fn pairwise_distances_rejects_ragged_input() {
        let vs = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(pairwise_squared_distances(&vs).is_err());
    }

    #[test]
    fn k_smallest_ranks_nan_last() {
        let v = [5.0, f32::NAN, 1.0, 3.0];
        assert_eq!(k_smallest_indices(&v, 2).unwrap(), vec![2, 3]);
        assert_eq!(k_smallest_indices(&v, 4).unwrap(), vec![2, 3, 0, 1]);
        assert!(k_smallest_indices(&v, 5).is_err());
    }

    #[test]
    fn coordinate_mean_and_median() {
        let vs = vec![
            Vector::from(vec![1.0, 10.0]),
            Vector::from(vec![2.0, 20.0]),
            Vector::from(vec![3.0, 90.0]),
        ];
        assert_eq!(coordinate_mean(&vs).unwrap().as_slice(), &[2.0, 40.0]);
        assert_eq!(coordinate_median(&vs).unwrap().as_slice(), &[2.0, 20.0]);
        assert!(coordinate_mean(&[]).is_err());
        assert!(coordinate_median(&[]).is_err());
    }

    #[test]
    fn coordinate_median_tolerates_nan_columns() {
        let vs = vec![
            Vector::from(vec![1.0, f32::NAN]),
            Vector::from(vec![3.0, 5.0]),
            Vector::from(vec![2.0, 7.0]),
        ];
        let m = coordinate_median(&vs).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 6.0]);
    }

    #[test]
    fn variance_and_std() {
        assert_eq!(variance(&[1.0, 1.0, 1.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-6);
        assert_eq!(variance(&[1.0]), 0.0);
        let vs = vec![Vector::from(vec![1.0, 0.0]), Vector::from(vec![3.0, 0.0])];
        let s = coordinate_std(&vs).unwrap();
        assert!((s[0] - (2.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(s[1], 0.0);
    }
}
