//! Branch-free vertical selection networks for the order-statistic kernels.
//!
//! # Why networks, and why vertical
//!
//! The coordinate-wise rules (median, trimmed mean, MeaMed, Bulyan's second
//! phase) reduce `d` independent columns of `n` values each, with `n` the
//! worker count — small (≤ a few dozen) and fixed for a whole round. A
//! data-dependent selection algorithm like quickselect is the right tool for
//! one large array, but at worker-count sizes it is all overhead: every
//! partition step branches on the data, the branches are unpredictable by
//! construction (the pivot splits the column near 50/50), and nothing
//! vectorises. Profiling put the scalar `select_nth_unstable` path at
//! ~250 ns per coordinate — 25 ms per round at d = 100k, the single largest
//! per-round cost left in the system.
//!
//! A **sorting network** is the opposite trade: a fixed sequence of
//! compare–exchange operations, chosen once from `n` alone, that sorts *any*
//! input. No data-dependent control flow exists, so the same network can be
//! executed **vertically**: lay W columns side by side (`[f32; W]` lanes,
//! W = 8–16), and run each compare–exchange as an elementwise min/max over
//! whole lanes. Every operation is a two-instruction vector min/max the
//! autovectoriser emits readily on stable Rust, the tile (`n × W × 4` bytes,
//! ~1.2 KiB at the paper's n = 19) lives in L1, and one pass sorts sixteen
//! columns at once. The per-coordinate cost drops from ~250 ns to a handful
//! of nanoseconds.
//!
//! # The Batcher construction
//!
//! [`SelectionNetwork::sorting`] generates Batcher's odd–even mergesort: a
//! recursive merge of sorted halves, expressed here in the classic iterative
//! form (outer loop over merge phase sizes `p = 1, 2, 4, …`, inner loops
//! over the comparison strides `k = p, p/2, …, 1`). The construction is
//! valid for any `n`, not only powers of two, and costs O(n log² n)
//! compare–exchanges — 98 for n = 19. Optimal hand-crafted networks exist
//! for tiny `n`, but Batcher is within a few comparators of optimal in this
//! range and one uniform construction keeps the code honest.
//!
//! The rules rarely need the whole sorted column: the median reads one or
//! two positions, the trimmed mean a middle window. [`SelectionNetwork::
//! selecting`] prunes the sorting network for a contiguous window of output
//! positions by a backward liveness pass: walking the comparator list in
//! reverse, a compare–exchange is kept only if it touches a position whose
//! final value must be correct, and keeping it marks both of its wires
//! live. Dropping a comparator that touches no live wire cannot change any
//! live value (inductively, forward: the dropped comparator writes only
//! dead positions, and every kept comparator sees the same inputs it would
//! have seen in the full network). The pruned network places the requested
//! window of order statistics exactly where the full sort would.
//!
//! # NaN canonicalisation and the total order
//!
//! The scalar kernels first drop NaN values, then compare with
//! `partial_cmp`/`total_cmp` over the NaN-free remainder. Min/max lanes
//! cannot "drop" a value, so the kernel driver canonicalises instead: a
//! gather pre-pass replaces every NaN with `+∞` (counting the replacements
//! per lane) before the network runs. Over NaN-free data the comparison
//! select `if y < x { y } else { x }` is a total order agreeing with
//! `total_cmp` everywhere the kernels can observe (the one divergence,
//! `-0.0` vs `+0.0`, is between numerically equal values). Canonicalised
//! NaNs tie with genuine `+∞` submissions and sort to the tail, so for a
//! lane with `k` non-NaN values the sorted prefix `0..k` is exactly the
//! sorted non-NaN multiset the scalar kernel operates on — the consumer
//! reads order statistics relative to `k` and never sees the padding.
//!
//! The networks are deliberately capped at [`MAX_NETWORK_N`] wires: the
//! O(n log² n) comparator count loses to O(n) quickselect for large `n`,
//! and worker counts beyond 32 per aggregation group are outside the
//! paper's deployment envelope. Callers fall back to the scalar kernels
//! above the cap.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// Largest wire count (row count `n`) the network kernels serve. Above this
/// the O(n log² n) comparator count loses to quickselect and callers use
/// the scalar path.
pub const MAX_NETWORK_N: usize = 32;

/// One compare–exchange: sorts the pair of wires `(lo, hi)` so the smaller
/// value lands on `lo`. Generation guarantees `lo < hi < n ≤ 32`, hence the
/// narrow index type (the whole network for n = 32 fits in half a KiB).
pub type CompareExchange = (u16, u16);

/// A fixed comparator sequence placing selected order statistics of `n`
/// values, executable vertically over lanes of columns.
///
/// ```
/// use agg_tensor::sortnet::SelectionNetwork;
/// let net = SelectionNetwork::sorting(4);
/// // Two columns side by side, lane-major: position p of lane w is
/// // tile[p * W + w].
/// let mut tile = [3.0, 40.0, 1.0, 10.0, 2.0, 30.0, 0.0, 20.0];
/// net.apply_lanes::<2>(&mut tile);
/// assert_eq!(tile, [0.0, 10.0, 1.0, 20.0, 2.0, 30.0, 3.0, 40.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionNetwork {
    n: usize,
    ces: Vec<CompareExchange>,
}

impl SelectionNetwork {
    /// Batcher's odd–even mergesort network over `n` wires (full sort).
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds [`MAX_NETWORK_N`].
    pub fn sorting(n: usize) -> Self {
        assert!(n <= MAX_NETWORK_N, "selection networks are capped at {MAX_NETWORK_N} wires");
        let mut ces = Vec::new();
        // Iterative Batcher odd–even mergesort, valid for any n (each
        // phase p merges sorted runs of length p; each stride k compares
        // wires k apart within the merge, guarded so comparisons never
        // cross a 2p-aligned block boundary).
        let mut p = 1;
        while p < n {
            let mut k = p;
            while k >= 1 {
                let mut j = k % p;
                while j + k < n {
                    for i in 0..k.min(n - j - k) {
                        if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                            ces.push(((i + j) as u16, (i + j + k) as u16));
                        }
                    }
                    j += 2 * k;
                }
                k /= 2;
            }
            p *= 2;
        }
        SelectionNetwork { n, ces }
    }

    /// The sorting network pruned to place only the order statistics in
    /// `window` (positions into the sorted order): a backward liveness pass
    /// keeps a comparator iff it touches a wire whose final value is
    /// needed, marking both its wires needed in turn. The result is a valid
    /// *selection* network — positions inside `window` end up with exactly
    /// the values a full sort would put there; positions outside carry
    /// garbage.
    ///
    /// For the median `window` is one or two positions and the network
    /// sheds roughly a fifth of its comparators (79 of 98 survive at
    /// n = 19); a `trim..n-trim` window for the trimmed mean keeps most of
    /// the middle and sheds only the comparators that finish ordering the
    /// tails.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds [`MAX_NETWORK_N`] or `window` is not
    /// contained in `0..n`.
    pub fn selecting(n: usize, window: Range<usize>) -> Self {
        assert!(
            window.start <= window.end && window.end <= n,
            "selection window {}..{} out of range for {} wires",
            window.start,
            window.end,
            n
        );
        let full = Self::sorting(n);
        let mut needed = [false; MAX_NETWORK_N];
        for pos in window {
            needed[pos] = true;
        }
        let mut kept: Vec<CompareExchange> = Vec::with_capacity(full.ces.len());
        for &(lo, hi) in full.ces.iter().rev() {
            if needed[lo as usize] || needed[hi as usize] {
                needed[lo as usize] = true;
                needed[hi as usize] = true;
                kept.push((lo, hi));
            }
        }
        kept.reverse();
        SelectionNetwork { n, ces: kept }
    }

    /// Process-wide cached sorting network (see
    /// [`SelectionNetwork::selecting_cached`]).
    pub fn sorting_cached(n: usize) -> &'static SelectionNetwork {
        Self::selecting_cached(n, 0..n)
    }

    /// Process-wide cached selection network for `(n, window)`.
    ///
    /// Construction costs a few microseconds — irrelevant once per round,
    /// but the sharded tier invokes a kernel per shard per round, and S
    /// rebuilds per round showed up as a measurable fraction of the
    /// coordinate rules' sharding overhead. Networks depend only on `(n,
    /// window)` and `n` is capped at [`MAX_NETWORK_N`], so the cache is
    /// small and bounded; entries are leaked into `'static` (a handful of
    /// KiB over a process lifetime) so callers share plain references with
    /// no per-call locking beyond the lookup.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SelectionNetwork::selecting`].
    pub fn selecting_cached(n: usize, window: Range<usize>) -> &'static SelectionNetwork {
        type Cache = Mutex<HashMap<(usize, usize, usize), &'static SelectionNetwork>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let mut cache = CACHE.get_or_init(Default::default).lock().expect("network cache poisoned");
        cache
            .entry((n, window.start, window.end))
            .or_insert_with(|| Box::leak(Box::new(Self::selecting(n, window))))
    }

    /// Number of wires (the row count the network was generated for).
    pub fn wires(&self) -> usize {
        self.n
    }

    /// Number of compare–exchange operations.
    pub fn comparators(&self) -> usize {
        self.ces.len()
    }

    /// Executes the network vertically over a lane-major tile: `W` columns
    /// side by side, position `p` of lane `w` at `tile[p * W + w]`. Every
    /// compare–exchange becomes an elementwise min/max over two `W`-wide
    /// rows — branch-free, so the inner loop autovectorises.
    ///
    /// The tile must be NaN-free (see the module docs on canonicalisation):
    /// the comparison selects compile to plain vector min/max whose NaN
    /// behaviour would silently differ from the scalar kernels' NaN policy.
    ///
    /// # Panics
    ///
    /// Panics when the tile is shorter than `wires() * W`.
    #[inline]
    pub fn apply_lanes<const W: usize>(&self, tile: &mut [f32]) {
        assert!(tile.len() >= self.n * W, "tile holds fewer than {} rows of {W} lanes", self.n);
        for &(lo, hi) in &self.ces {
            let ai = lo as usize * W;
            let (head, tail) = tile.split_at_mut(hi as usize * W);
            // Statically sized lane views: the `[f32; W]` type is what lets
            // the compiler drop the bounds checks and unroll the lane loop
            // into straight-line vector min/max.
            let a: &mut [f32; W] = (&mut head[ai..ai + W]).try_into().expect("lane width");
            let b: &mut [f32; W] = (&mut tail[..W]).try_into().expect("lane width");
            for w in 0..W {
                let x = a[w];
                let y = b[w];
                // f32::min/max rather than comparison selects: the selects
                // compile to data-dependent branches, which mispredict ~50%
                // of the time on unsorted lanes; min/max lower to branchless
                // vector instructions. Their IEEE NaN preference never
                // triggers — NaN is canonicalised away before the network
                // runs.
                a[w] = x.min(y);
                b[w] = x.max(y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a network over a single column (W = 1).
    fn run(net: &SelectionNetwork, values: &[f32]) -> Vec<f32> {
        let mut tile = values.to_vec();
        net.apply_lanes::<1>(&mut tile);
        tile
    }

    #[test]
    fn sorting_networks_sort_all_01_inputs_exhaustively() {
        // The 0-1 principle: a comparator network sorts every input iff it
        // sorts every 0/1 input. Exhaustive up to n = 12 (4096 patterns).
        for n in 1..=12usize {
            let net = SelectionNetwork::sorting(n);
            for pattern in 0..(1u32 << n) {
                let input: Vec<f32> =
                    (0..n).map(|i| if pattern >> i & 1 == 1 { 1.0 } else { 0.0 }).collect();
                let output = run(&net, &input);
                let ones = input.iter().filter(|&&v| v == 1.0).count();
                let expected: Vec<f32> =
                    (0..n).map(|i| f32::from(u8::from(i >= n - ones))).collect();
                assert_eq!(output, expected, "n={n} pattern={pattern:b}");
            }
        }
    }

    #[test]
    fn sorting_networks_sort_random_inputs_up_to_the_cap() {
        // Deterministic pseudo-random probe for every n up to the cap,
        // duplicates included.
        for n in 1..=MAX_NETWORK_N {
            let net = SelectionNetwork::sorting(n);
            for round in 0..50u64 {
                let mut state = round.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(n as u64);
                let input: Vec<f32> = (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) % 7) as f32 - 3.0
                    })
                    .collect();
                let mut expected = input.clone();
                expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(run(&net, &input), expected, "n={n} round={round}");
            }
        }
    }

    #[test]
    fn pruned_networks_agree_with_the_full_sort_on_their_window() {
        for n in 1..=MAX_NETWORK_N {
            let windows = [
                (n - 1) / 2..n / 2 + 1, // median positions
                0..n,                   // degenerate: full sort
                n / 3..n - n / 4,       // an asymmetric middle window
            ];
            for window in windows {
                let net = SelectionNetwork::selecting(n, window.clone());
                let full = SelectionNetwork::sorting(n);
                assert!(net.comparators() <= full.comparators());
                for round in 0..30u64 {
                    let mut state =
                        round.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(n as u64);
                    let input: Vec<f32> = (0..n)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                            ((state >> 40) % 11) as f32 * 0.5 - 2.0
                        })
                        .collect();
                    let pruned_out = run(&net, &input);
                    let full_out = run(&full, &input);
                    for p in window.clone() {
                        assert_eq!(
                            pruned_out[p], full_out[p],
                            "n={n} window position {p} diverged from the full sort"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn median_pruning_shrinks_the_paper_sized_network() {
        let full = SelectionNetwork::sorting(19);
        let median = SelectionNetwork::selecting(19, 9..10);
        assert!(
            median.comparators() < full.comparators(),
            "pruning must drop comparators ({} vs {})",
            median.comparators(),
            full.comparators()
        );
    }

    #[test]
    fn multi_lane_tiles_sort_each_lane_independently() {
        let net = SelectionNetwork::sorting(3);
        // Lanes: [5,1,3] and [-1,-2,-3], interleaved lane-major.
        let mut tile = [5.0, -1.0, 1.0, -2.0, 3.0, -3.0];
        net.apply_lanes::<2>(&mut tile);
        assert_eq!(tile, [1.0, -3.0, 3.0, -2.0, 5.0, -1.0]);
    }

    #[test]
    fn trivial_networks_are_empty() {
        assert_eq!(SelectionNetwork::sorting(0).comparators(), 0);
        assert_eq!(SelectionNetwork::sorting(1).comparators(), 0);
        assert_eq!(SelectionNetwork::selecting(1, 0..1).comparators(), 0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_networks_are_rejected() {
        SelectionNetwork::sorting(MAX_NETWORK_N + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_windows_are_rejected() {
        SelectionNetwork::selecting(4, 3..5);
    }
}
