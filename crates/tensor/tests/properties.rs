//! Property-based tests for the numeric kernels in `agg-tensor`.

use agg_tensor::{stats, Vector};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL | prop::num::f32::ZERO
}

fn vector(len: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(finite_f32().prop_map(|x| x % 1e3), len).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn distance_is_symmetric_and_nonnegative(a in vector(16), b in vector(16)) {
        let dab = a.squared_distance(&b);
        let dba = b.squared_distance(&a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() <= 1e-3 * dab.abs().max(1.0));
    }

    #[test]
    fn distance_to_self_is_zero(a in vector(32)) {
        prop_assert_eq!(a.squared_distance(&a), 0.0);
    }

    #[test]
    fn triangle_inequality_on_norm_distance(a in vector(8), b in vector(8), c in vector(8)) {
        let ab = a.distance(&b);
        let bc = b.distance(&c);
        let ac = a.distance(&c);
        prop_assert!(ac <= ab + bc + 1e-2 * (ab + bc).max(1.0));
    }

    #[test]
    fn median_is_within_input_range(values in prop::collection::vec(-1e3f32..1e3, 1..64)) {
        let m = stats::median(&values).unwrap();
        let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn median_is_permutation_invariant(mut values in prop::collection::vec(-1e3f32..1e3, 1..32)) {
        let m1 = stats::median(&values).unwrap();
        values.reverse();
        let m2 = stats::median(&values).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_is_within_kept_range(values in prop::collection::vec(-1e3f32..1e3, 5..64)) {
        let trim = values.len() / 4;
        let tm = stats::trimmed_mean(&values, trim).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let kept = &sorted[trim..sorted.len() - trim];
        let lo = kept.first().copied().unwrap();
        let hi = kept.last().copied().unwrap();
        prop_assert!(tm >= lo - 1e-3 && tm <= hi + 1e-3);
    }

    #[test]
    fn coordinate_mean_commutes_with_scaling(vs in prop::collection::vec(vector(8), 1..8), alpha in -10.0f32..10.0) {
        let mean = stats::coordinate_mean(&vs).unwrap();
        let scaled: Vec<Vector> = vs.iter().map(|v| v.scaled(alpha)).collect();
        let mean_scaled = stats::coordinate_mean(&scaled).unwrap();
        for i in 0..mean.len() {
            let expected = mean[i] * alpha;
            prop_assert!((mean_scaled[i] - expected).abs() <= 1e-2 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn k_smallest_returns_sorted_prefix(values in prop::collection::vec(-1e3f32..1e3, 1..64), k_frac in 0.0f64..1.0) {
        let k = ((values.len() as f64) * k_frac) as usize;
        let idx = stats::k_smallest_indices(&values, k).unwrap();
        prop_assert_eq!(idx.len(), k);
        // Selected values are all <= every non-selected value.
        let selected_max = idx.iter().map(|&i| values[i]).fold(f32::NEG_INFINITY, f32::max);
        for (i, &v) in values.iter().enumerate() {
            if !idx.contains(&i) && k > 0 {
                prop_assert!(v >= selected_max - 1e-6);
            }
        }
    }

    #[test]
    fn axpy_matches_operator_addition(a in vector(16), b in vector(16), alpha in -5.0f32..5.0) {
        let mut lhs = a.clone();
        lhs.axpy(alpha, &b).unwrap();
        let rhs = &a + &b.scaled(alpha);
        for i in 0..lhs.len() {
            prop_assert!((lhs[i] - rhs[i]).abs() <= 1e-3 * rhs[i].abs().max(1.0));
        }
    }

    #[test]
    fn min_max_scale_bounds(mut v in vector(16)) {
        agg_tensor::ops::min_max_scale(&mut v);
        for &x in v.iter() {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = agg_tensor::ops::softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }
}
