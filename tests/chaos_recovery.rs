//! Chaos-engineered wire, end to end: seeded fault injection, CRC32
//! rejection and the bounded retransmit/timeout recovery path.
//!
//! Three contracts, each pinned at the training-loop level (and the first
//! also property-tested at the wire level):
//!
//! * **Corruption detected ≡ corruption dropped.** A damaged packet the
//!   CRC32 envelope rejects must train *bit-for-bit* like the same packet
//!   never arriving: `ChaosMode::Corrupt` vs `ChaosMode::Drop` runs are
//!   compared across the full GAR × shards grid. Zero silent corruption —
//!   every injected fault is accounted in `corrupt_rejects`.
//! * **Recovery within budget ≡ a clean wire.** With a generous NACK
//!   budget the retransmit path re-delivers everything chaos destroyed, so
//!   training is bit-identical to a fault-free run of the same seed (only
//!   simulated time pays for the retries).
//! * **Recovery exhausted ≡ a transport loss.** A worker partitioned past
//!   its retry budget degrades exactly like a quorum straggler: the row is
//!   compacted away and the `n − f` round aggregates the same survivor set.
//!
//! CI runs this suite under `RAYON_NUM_THREADS={1,4}` ×
//! `AGG_STREAMING={on,off}`, closing the determinism argument for the
//! recovery path the same way `round_determinism` does for the clean one.

use agg_core::{GarConfig, GarKind};
use agg_net::{
    reseal_packet_bytes, ChaosConfig, ChaosMode, ChaosPlan, GradientCodec, LinkConfig, LossPolicy,
    LossyTransport, RetransmitConfig, RoundAssembler, ShardedRoundAssembler, Transport,
};
use agg_nn::schedule::LearningRate;
use agg_ps::{QuorumPolicy, RunnerConfig, SyncTrainingEngine, TrainingReport, TransportKind};
use proptest::prelude::*;

/// The light proxy experiment shared with `round_determinism` and
/// `elastic_membership`: d = 508 parameters → exactly 2 packets per gradient
/// under the default 350-coordinate codec.
fn base_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    let mut config = RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: GarConfig::new(gar, f),
        workers,
        max_steps: 6,
        eval_every: 3,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 31,
        ..RunnerConfig::quick_default()
    };
    if matches!(std::env::var("AGG_STREAMING").as_deref(), Ok("on") | Ok("1") | Ok("true")) {
        config.streaming.enabled = true;
    }
    config
}

/// Bit-for-bit equality of everything the gradient path determines. The
/// simulated clock is deliberately excluded: chaos modes and retransmits
/// charge different wire times, and the contracts below are about *values*.
fn assert_same_training(a: &TrainingReport, b: &TrainingReport, label: &str) {
    assert_eq!(a.steps_completed, b.steps_completed, "{label}: steps");
    assert_eq!(a.skipped_updates, b.skipped_updates, "{label}: skips");
    assert_eq!(a.refused_rounds, b.refused_rounds, "{label}: refusals");
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length");
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(p.step, q.step, "{label}: trace steps");
        assert_eq!(
            p.accuracy.to_bits(),
            q.accuracy.to_bits(),
            "{label}: accuracy diverged at step {}",
            p.step
        );
        assert_eq!(p.loss.to_bits(), q.loss.to_bits(), "{label}: loss diverged at step {}", p.step);
    }
}

#[test]
fn corruption_detected_trains_identically_to_corruption_dropped() {
    // The zero-silent-corruption contract across the GAR grid: for every
    // rule (and both the flat and the S = 3 sharded tier), a run whose
    // degraded links damage packets (caught by the CRC envelope) must be
    // bit-identical to a run whose links *drop* the exact same packets —
    // the only difference the wire damage is allowed to make is the
    // `corrupt_rejects` accounting.
    let grid = [
        (GarKind::Average, 0),
        (GarKind::Median, 1),
        (GarKind::Median, 2),
        (GarKind::TrimmedMean, 1),
        (GarKind::TrimmedMean, 2),
        (GarKind::Krum, 1),
        (GarKind::Krum, 2),
        (GarKind::MultiKrum, 1),
        (GarKind::MultiKrum, 2),
        (GarKind::Bulyan, 1),
    ];
    for (gar, f) in grid {
        for shards in [1usize, 3] {
            let mut config = base_config(gar, f, 9);
            config.shards = shards;
            config.transport = TransportKind::Lossy { policy: LossPolicy::RandomFill };
            config.lossy_links = 3;
            config.chaos = Some(ChaosConfig::moderate());
            let corrupt =
                SyncTrainingEngine::new(config.clone()).expect("valid").run().expect("runs");
            config.chaos = Some(ChaosConfig { mode: ChaosMode::Drop, ..ChaosConfig::moderate() });
            let dropped = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");
            let label = format!("{gar} f={f} shards={shards}");
            assert_same_training(&corrupt, &dropped, &label);
            assert!(corrupt.corrupt_rejects > 0, "{label}: chaos never landed a fault");
            assert_eq!(dropped.corrupt_rejects, 0, "{label}: dropped packets are not corrupt");
        }
    }
}

#[test]
fn retransmit_within_budget_is_bit_identical_to_a_fault_free_run() {
    // Recovery proven: with a retry budget generous enough to outlast the
    // chaos schedule, every damaged coordinate is re-delivered and the run
    // trains bit-for-bit like a clean wire — the faults exist only in the
    // `corrupt_rejects` ledger and the simulated clock.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.max_steps = 12;
    config.eval_every = 4;
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 3;
    let baseline = SyncTrainingEngine::new(config.clone()).expect("valid").run().expect("runs");
    assert_eq!(baseline.corrupt_rejects, 0);

    config.chaos = Some(ChaosConfig::moderate());
    config.retransmit = Some(RetransmitConfig {
        max_retries: 16,
        round_deadline_sec: 10.0,
        ..RetransmitConfig::default()
    });
    let recovered = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");
    assert_same_training(&baseline, &recovered, "recovered vs fault-free");
    assert!(recovered.corrupt_rejects > 0, "the chaos schedule must actually fire");
    assert!(
        recovered.simulated_time_sec > baseline.simulated_time_sec,
        "retries charge backoff and resend time to the clock"
    );
}

#[test]
fn exhausted_recovery_degrades_exactly_like_a_quorum_straggler() {
    // Graceful degradation beyond the budget: worker 8's link is fully
    // partitioned and its retries exhaust, so its row is compacted away —
    // and the n − f quorum round must aggregate the *same* survivor set,
    // bit for bit, as a run where worker 8 is merely a hopeless straggler.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.max_steps = 12;
    config.eval_every = 4;
    config.streaming.quorum = QuorumPolicy::NMinusF;
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 1; // worker 8 only

    let mut partitioned_cfg = config.clone();
    partitioned_cfg.chaos = Some(ChaosConfig { partition_rate: 1.0, ..ChaosConfig::default() });
    partitioned_cfg.retransmit = Some(RetransmitConfig::default());
    let partitioned = SyncTrainingEngine::new(partitioned_cfg).expect("valid").run().expect("runs");

    let mut straggler_cfg = config;
    straggler_cfg.worker_extra_delay_sec = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 50.0];
    let straggler = SyncTrainingEngine::new(straggler_cfg).expect("valid").run().expect("runs");

    assert_same_training(&partitioned, &straggler, "partitioned vs straggler");
    assert_eq!(partitioned.steps_completed, 12, "n − f quorum absorbs the lost row");
    assert_eq!(partitioned.skipped_updates, 0);
    assert_eq!(
        partitioned.corrupt_rejects, 0,
        "a partition delivers nothing — there is nothing to reject"
    );
}

#[test]
fn retry_delay_spikes_consume_the_round_deadline_budget() {
    // Pins the retransmit-delay accounting contract: a delay spike injected
    // on a *retry* attempt is charged to `time_sec` before the next
    // `time_sec + backoff <= round_deadline_sec` check, so a delay-heavy
    // plan exhausts the deadline in strictly fewer retries than a delay-free
    // twin with the identical fault schedule. The spike magnitude changes no
    // RNG draw (each attempt reseeds from (step, stream, attempt)), so the
    // two plans drop exactly the same packets — only the clock differs.
    let link = LinkConfig::datacenter().with_drop_rate(0.6);
    let codec = GradientCodec::new(10).unwrap();
    let retrans = RetransmitConfig {
        max_retries: 16,
        initial_backoff_sec: 1e-4,
        backoff_factor: 1.5,
        round_deadline_sec: 0.25,
    };
    let spike_sec = 0.05f64;
    let gradient: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25 - 3.0).collect();
    let run = |delay_spike_sec: f64| {
        let chaos =
            ChaosConfig { delay_spike_rate: 1.0, delay_spike_sec, ..ChaosConfig::default() };
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 11, 0).unwrap();
        t.set_chaos(Some(ChaosPlan::new(chaos, 11).unwrap()));
        t.set_retransmit(Some(retrans));
        let mut row = vec![0.0f32; gradient.len()];
        t.transfer_into(0, 0, &gradient, &mut row).unwrap()
    };

    let free = run(0.0);
    let heavy = run(spike_sec);

    assert!(free.delivered, "without delay spikes the retry budget must complete the row");
    assert!(free.retransmits > 1, "60% loss must need more than one retry");
    assert!(
        heavy.retransmits < free.retransmits,
        "retry delay spikes must shrink the usable retry budget \
         (heavy {} vs free {})",
        heavy.retransmits,
        free.retransmits
    );
    // Every attempt — the initial send and each retry — fired a spike, and
    // every one of them must appear in the reported time.
    assert!(
        heavy.time_sec >= spike_sec * (heavy.retransmits + 1) as f64,
        "reported time {} must include all {} delay spikes",
        heavy.time_sec,
        heavy.retransmits + 1
    );
    // The guard runs before each retry, so the overrun is bounded by one
    // attempt's spike + wire time.
    assert!(
        heavy.time_sec <= retrans.round_deadline_sec + spike_sec + 0.01,
        "the deadline bounds the clock to one attempt of overrun, got {}",
        heavy.time_sec
    );
}

#[test]
fn retry_delay_spikes_are_charged_to_the_reported_round_wait() {
    // The engine-level half of the same pin: two runs whose chaos plans
    // differ only in spike magnitude (every fault draw identical) must train
    // bit-for-bit — recovery re-delivers everything either way under a
    // generous deadline — while the delay-heavy run's simulated clock, which
    // aggregates the per-round `round_wait`, is strictly larger.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.max_steps = 12;
    config.eval_every = 4;
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 3;
    config.retransmit = Some(RetransmitConfig {
        max_retries: 16,
        round_deadline_sec: 10.0,
        ..RetransmitConfig::default()
    });
    config.chaos = Some(ChaosConfig {
        delay_spike_rate: 1.0,
        delay_spike_sec: 0.0,
        ..ChaosConfig::moderate()
    });
    let free = SyncTrainingEngine::new(config.clone()).expect("valid").run().expect("runs");
    config.chaos = Some(ChaosConfig {
        delay_spike_rate: 1.0,
        delay_spike_sec: 2e-3,
        ..ChaosConfig::moderate()
    });
    let heavy = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");

    assert_same_training(&free, &heavy, "delay-heavy vs delay-free");
    assert!(heavy.corrupt_rejects > 0, "the chaos schedule must actually fire");
    assert!(
        heavy.simulated_time_sec > free.simulated_time_sec,
        "retry delay spikes must be charged to the reported round_wait \
         (heavy {} vs free {})",
        heavy.simulated_time_sec,
        free.simulated_time_sec
    );
}

/// Flips one payload bit of each selected packet and reseals nothing — the
/// receiver must catch it via the CRC.
fn damage(packets: &[bytes::Bytes], victims: &[usize]) -> Vec<bytes::Bytes> {
    packets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if victims.contains(&i) {
                let mut raw = p.to_vec();
                let byte = raw.len() - 1;
                raw[byte] ^= 0x10;
                bytes::Bytes::from(raw)
            } else {
                p.clone()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire-level version of the corruption ≡ drop contract, under
    /// arbitrary gradients and arbitrary victim sets, for both assemblers:
    /// feeding a batch with damaged packets yields the same row bits and
    /// the same missing count as feeding the batch with those packets
    /// removed — plus an exact `corrupt_rejects` ledger.
    #[test]
    fn damaged_packets_assemble_exactly_like_removed_packets(
        g in prop::collection::vec(prop::num::f32::ANY, 1..700),
        victims in prop::collection::vec(0usize..8, 0..6),
        worker in 0u32..16,
    ) {
        let codec = GradientCodec::new(97).unwrap();
        let clean = codec.split_bytes(worker, 4, &g);
        let victims: Vec<usize> =
            victims.into_iter().map(|v| v % clean.len()).collect();
        let damaged = damage(&clean, &victims);
        let removed: Vec<_> = clean
            .iter()
            .enumerate()
            .filter(|(i, _)| !victims.contains(i))
            .map(|(_, p)| p.clone())
            .collect();

        let mut a = RoundAssembler::new(g.len());
        let mut row_damaged = vec![-3.25f32; g.len()];
        let missing_damaged = a.assemble_into(&damaged, &mut row_damaged).unwrap();
        let distinct_victims =
            victims.iter().collect::<std::collections::BTreeSet<_>>().len();
        prop_assert_eq!(a.corrupt_rejects(), distinct_victims);

        let mut b = RoundAssembler::new(g.len());
        let mut row_removed = vec![-3.25f32; g.len()];
        let missing_removed = b.assemble_into(&removed, &mut row_removed).unwrap();
        prop_assert_eq!(b.corrupt_rejects(), 0);

        prop_assert_eq!(missing_damaged, missing_removed);
        for (x, y) in row_damaged.iter().zip(&row_removed) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // The S = 3 sharded assembler agrees with the flat one.
        let plan = agg_tensor::ShardPlan::new(g.len(), 3).unwrap();
        let mut s = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> =
            plan.ranges().map(|r| vec![-3.25f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> =
            shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        let missing_sharded = s.assemble_into(&damaged, &mut views).unwrap();
        prop_assert_eq!(missing_sharded, missing_damaged);
        prop_assert_eq!(s.corrupt_rejects(), distinct_victims);
        let flat: Vec<f32> = shard_rows.concat();
        for (x, y) in flat.iter().zip(&row_damaged) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// A resealed mutation is indistinguishable from an honest packet at the
    /// CRC layer — integrity is *tamper-evidence on the simulated wire*, not
    /// authentication — but the header validators still reject any resealed
    /// packet whose header no longer makes sense.
    #[test]
    fn resealed_nonsense_headers_stay_rejected(
        g in prop::collection::vec(prop::num::f32::ANY, 40..200),
        bad_sequence in 64u32..1000,
    ) {
        let codec = GradientCodec::new(32).unwrap();
        let packets = codec.split_bytes(0, 7, &g);
        let mut raw = packets[0].to_vec();
        // Point the sequence field past `total`, then reseal so the CRC is
        // valid again: the packet must now fail *semantic* validation.
        raw[12..16].copy_from_slice(&bad_sequence.to_le_bytes());
        reseal_packet_bytes(&mut raw);
        let mut assembler = RoundAssembler::new(g.len());
        let mut row = vec![0.0f32; g.len()];
        prop_assert!(assembler
            .assemble_into(&[bytes::Bytes::from(raw)], &mut row)
            .is_err());
        prop_assert_eq!(assembler.corrupt_rejects(), 0);
    }
}
