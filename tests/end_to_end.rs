//! End-to-end integration tests: every gradient aggregation rule trains the
//! proxy experiment to good accuracy in a clean (non-Byzantine) deployment,
//! and the security patch protects the shared model.

use agg_core::{GarConfig, GarKind};
use agg_nn::schedule::LearningRate;
use agg_ps::{ParameterServer, RunnerConfig, SyncTrainingEngine};
use agg_tensor::Vector;

fn clean_config(gar: GarKind, f: usize) -> RunnerConfig {
    RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 11,
        max_steps: 80,
        eval_every: 20,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 33,
        ..RunnerConfig::quick_default()
    }
}

fn train(gar: GarKind, f: usize) -> f64 {
    SyncTrainingEngine::new(clean_config(gar, f))
        .expect("valid configuration")
        .run()
        .expect("run completes")
        .final_accuracy()
}

#[test]
fn average_learns_the_proxy_task() {
    assert!(train(GarKind::Average, 0) > 0.7);
}

#[test]
fn median_learns_the_proxy_task() {
    assert!(train(GarKind::Median, 2) > 0.7);
}

#[test]
fn trimmed_mean_learns_the_proxy_task() {
    assert!(train(GarKind::TrimmedMean, 2) > 0.7);
}

#[test]
fn krum_learns_the_proxy_task() {
    // Krum uses a single gradient per step, so it is noisier; the bar is a
    // bit lower but must still show clear learning over the 10-class chance
    // level of 0.1.
    assert!(train(GarKind::Krum, 2) > 0.5);
}

#[test]
fn multi_krum_learns_the_proxy_task() {
    assert!(train(GarKind::MultiKrum, 2) > 0.7);
}

#[test]
fn bulyan_learns_the_proxy_task() {
    assert!(train(GarKind::Bulyan, 2) > 0.7);
}

#[test]
fn selective_average_learns_the_proxy_task() {
    assert!(train(GarKind::SelectiveAverage, 0) > 0.7);
}

#[test]
fn accuracy_per_update_is_comparable_across_robust_rules() {
    // Figure 3(b)/(d): update-wise, the robust rules track the baseline.
    let baseline = train(GarKind::Average, 0);
    let multi_krum = train(GarKind::MultiKrum, 2);
    let bulyan = train(GarKind::Bulyan, 2);
    assert!((baseline - multi_krum).abs() < 0.2, "avg {baseline} vs mk {multi_krum}");
    assert!((baseline - bulyan).abs() < 0.2, "avg {baseline} vs bulyan {bulyan}");
}

#[test]
fn runs_are_reproducible_for_a_fixed_seed() {
    let a = SyncTrainingEngine::new(clean_config(GarKind::MultiKrum, 2)).unwrap().run().unwrap();
    let b = SyncTrainingEngine::new(clean_config(GarKind::MultiKrum, 2)).unwrap().run().unwrap();
    assert_eq!(a.trace.points().len(), b.trace.points().len());
    for (pa, pb) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(pa.step, pb.step);
        assert!((pa.accuracy - pb.accuracy).abs() < 1e-9);
    }
}

#[test]
fn byzantine_resilience_costs_simulated_time() {
    // The 19%/43% story in miniature: with the paper-CNN cost model the
    // robust rules take longer in simulated time for the same number of
    // steps.
    use agg_ps::{CostModel, VirtualModelCost};
    let with_cost = |gar, f| {
        let mut config = clean_config(gar, f);
        config.workers = 19;
        config.max_steps = 20;
        config.cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
        SyncTrainingEngine::new(config).unwrap().run().unwrap().simulated_time_sec
    };
    let avg = with_cost(GarKind::Average, 0);
    let mk = with_cost(GarKind::MultiKrum, 4);
    let bulyan = with_cost(GarKind::Bulyan, 4);
    assert!(mk > avg, "Multi-Krum ({mk:.2}s) should cost more time than averaging ({avg:.2}s)");
    assert!(bulyan > mk, "Bulyan ({bulyan:.2}s) should cost more time than Multi-Krum ({mk:.2}s)");
}

#[test]
fn parameter_server_rejects_direct_writes_from_workers() {
    let mut server = ParameterServer::new(
        Vector::zeros(16),
        GarConfig::new(GarKind::MultiKrum, 1),
        agg_nn::optim::OptimizerKind::Sgd,
        LearningRate::paper_default(),
        agg_nn::optim::Regularization::none(),
    )
    .expect("server builds");
    assert!(server.handle_remote_write(0, &Vector::filled(16, 7.0)).is_err());
    assert_eq!(server.parameters(), &Vector::zeros(16));
}
