//! Attack × defence matrix: the resilience claims of the paper, checked end
//! to end on the proxy experiment.
//!
//! * Plain averaging collapses under every active attack (§2.2).
//! * Median, Multi-Krum and Bulyan keep learning under attacks within their
//!   declared `f` (weak resilience).
//! * Bulyan resists the dimensional-leeway attack at least as well as
//!   Multi-Krum (strong resilience, §4.3).
//! * Corrupted-data workers (Figure 7) ruin averaging but not Multi-Krum.

use agg_attacks::AttackKind;
use agg_core::{GarConfig, GarKind};
use agg_data::corruption::Corruption;
use agg_nn::schedule::LearningRate;
use agg_ps::{RunnerConfig, SyncTrainingEngine, TrainingReport};

fn run(gar: GarKind, f: usize, attack: AttackKind, byzantine: usize) -> TrainingReport {
    let config = RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        byzantine_count: byzantine,
        attack,
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    SyncTrainingEngine::new(config).expect("valid").run().expect("runs")
}

const GOOD: f64 = 0.7;
const BAD: f64 = 0.5;

#[test]
fn averaging_collapses_under_reversed_gradients() {
    let report = run(GarKind::Average, 0, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() < BAD, "accuracy {}", report.final_accuracy());
}

#[test]
fn averaging_collapses_under_non_finite_gradients() {
    let report = run(GarKind::Average, 0, AttackKind::NonFinite, 1);
    assert!(report.final_accuracy() < BAD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_reversed_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_random_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::Random { magnitude: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_non_finite_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::NonFinite, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
    assert_eq!(report.skipped_updates, 0);
}

#[test]
fn median_survives_reversed_gradients() {
    let report = run(GarKind::Median, 4, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn bulyan_survives_every_crude_attack() {
    for attack in [
        AttackKind::Reversed { scale: 100.0 },
        AttackKind::Random { magnitude: 100.0 },
        AttackKind::NonFinite,
        AttackKind::ConstantDrift { value: 50.0 },
    ] {
        let report = run(GarKind::Bulyan, 4, attack, 4);
        assert!(
            report.final_accuracy() > GOOD,
            "Bulyan under {attack:?}: accuracy {}",
            report.final_accuracy()
        );
    }
}

#[test]
fn bulyan_resists_the_dimensional_leeway_attack_at_least_as_well_as_multi_krum() {
    let attack = AttackKind::LittleIsEnough { z: 1.5 };
    let multi_krum = run(GarKind::MultiKrum, 4, attack, 4);
    let bulyan = run(GarKind::Bulyan, 4, attack, 4);
    assert!(
        bulyan.final_accuracy() >= multi_krum.final_accuracy() - 0.05,
        "strong resilience should not lose to weak: bulyan {} vs multi-krum {}",
        bulyan.final_accuracy(),
        multi_krum.final_accuracy()
    );
    // And Bulyan under the stealthy attack still learns.
    assert!(bulyan.final_accuracy() > 0.6, "bulyan accuracy {}", bulyan.final_accuracy());
}

fn run_poisoned(gar: GarKind, f: usize, poisoned: usize) -> TrainingReport {
    let config = RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        byzantine_count: poisoned,
        data_poisoning: Some(Corruption::HugeValues),
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    SyncTrainingEngine::new(config).expect("valid").run().expect("runs")
}

#[test]
fn corrupted_data_ruins_averaging_but_not_multi_krum() {
    // The Figure 7 experiment: a single worker training on malformed records.
    let tf = run_poisoned(GarKind::Average, 0, 1);
    let aggregathor = run_poisoned(GarKind::MultiKrum, 1, 1);
    assert!(tf.final_accuracy() < BAD, "averaging should degrade, got {}", tf.final_accuracy());
    assert!(
        aggregathor.final_accuracy() > GOOD,
        "Multi-Krum should match the ideal run, got {}",
        aggregathor.final_accuracy()
    );
}
