//! Attack × defence matrix: the resilience claims of the paper, checked end
//! to end on the proxy experiment.
//!
//! * Plain averaging collapses under every active attack (§2.2).
//! * Median, Multi-Krum and Bulyan keep learning under attacks within their
//!   declared `f` (weak resilience).
//! * Bulyan resists the dimensional-leeway attack at least as well as
//!   Multi-Krum (strong resilience, §4.3).
//! * Corrupted-data workers (Figure 7) ruin averaging but not Multi-Krum.

use agg_attacks::{AttackContext, AttackKind, ChurnDirective};
use agg_core::{Bulyan, Gar, GarConfig, GarKind, MultiKrum, ShardedAggregator};
use agg_data::corruption::Corruption;
use agg_nn::schedule::LearningRate;
use agg_ps::{
    FaultAction, FaultPlan, QuorumPolicy, ReputationConfig, RunnerConfig, SyncTrainingEngine,
    TrainingReport,
};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use agg_tensor::{GradientBatch, Vector};

fn run(gar: GarKind, f: usize, attack: AttackKind, byzantine: usize) -> TrainingReport {
    let config = RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        byzantine_count: byzantine,
        attack,
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    SyncTrainingEngine::new(config).expect("valid").run().expect("runs")
}

const GOOD: f64 = 0.7;
const BAD: f64 = 0.5;

#[test]
fn averaging_collapses_under_reversed_gradients() {
    let report = run(GarKind::Average, 0, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() < BAD, "accuracy {}", report.final_accuracy());
}

#[test]
fn averaging_collapses_under_non_finite_gradients() {
    let report = run(GarKind::Average, 0, AttackKind::NonFinite, 1);
    assert!(report.final_accuracy() < BAD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_reversed_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_random_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::Random { magnitude: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn multi_krum_survives_non_finite_gradients() {
    let report = run(GarKind::MultiKrum, 4, AttackKind::NonFinite, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
    assert_eq!(report.skipped_updates, 0);
}

#[test]
fn median_survives_reversed_gradients() {
    let report = run(GarKind::Median, 4, AttackKind::Reversed { scale: 100.0 }, 4);
    assert!(report.final_accuracy() > GOOD, "accuracy {}", report.final_accuracy());
}

#[test]
fn bulyan_survives_every_crude_attack() {
    for attack in [
        AttackKind::Reversed { scale: 100.0 },
        AttackKind::Random { magnitude: 100.0 },
        AttackKind::NonFinite,
        AttackKind::ConstantDrift { value: 50.0 },
    ] {
        let report = run(GarKind::Bulyan, 4, attack, 4);
        assert!(
            report.final_accuracy() > GOOD,
            "Bulyan under {attack:?}: accuracy {}",
            report.final_accuracy()
        );
    }
}

#[test]
fn bulyan_resists_the_dimensional_leeway_attack_at_least_as_well_as_multi_krum() {
    let attack = AttackKind::LittleIsEnough { z: 1.5 };
    let multi_krum = run(GarKind::MultiKrum, 4, attack, 4);
    let bulyan = run(GarKind::Bulyan, 4, attack, 4);
    assert!(
        bulyan.final_accuracy() >= multi_krum.final_accuracy() - 0.05,
        "strong resilience should not lose to weak: bulyan {} vs multi-krum {}",
        bulyan.final_accuracy(),
        multi_krum.final_accuracy()
    );
    // And Bulyan under the stealthy attack still learns.
    assert!(bulyan.final_accuracy() > 0.6, "bulyan accuracy {}", bulyan.final_accuracy());
}

fn run_poisoned(gar: GarKind, f: usize, poisoned: usize) -> TrainingReport {
    let config = RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        byzantine_count: poisoned,
        data_poisoning: Some(Corruption::HugeValues),
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    SyncTrainingEngine::new(config).expect("valid").run().expect("runs")
}

/// Every attack the catalogue knows, at the paper's deployment size.
const ALL_ATTACKS: [AttackKind; 11] = [
    AttackKind::None,
    AttackKind::Random { magnitude: 100.0 },
    AttackKind::Reversed { scale: 100.0 },
    AttackKind::SignFlip,
    AttackKind::NonFinite,
    AttackKind::ConstantDrift { value: 50.0 },
    AttackKind::LittleIsEnough { z: 1.5 },
    AttackKind::Alie { z: 0.0 }, // 0.0 = the exact z_max for (n, f)
    AttackKind::MinMax,
    AttackKind::MinSum,
    AttackKind::Adaptive,
];

/// Attacks that stay *within the honest variance envelope* by construction.
/// Their published mechanism is to be close enough to the honest cloud that
/// a distance-based selection cannot distinguish them — they may legitimately
/// enter a Krum-family selection set (that is the attack), and what bounds
/// their leverage is the budget itself (and, for Bulyan, the phase-2 trimmed
/// median). The Byzantine-exclusion assertion below therefore exempts them,
/// exactly like the original dimensional-leeway attack.
fn within_variance(attack: &AttackKind) -> bool {
    matches!(
        attack,
        AttackKind::None
            | AttackKind::LittleIsEnough { .. }
            | AttackKind::Alie { .. }
            | AttackKind::MinMax
            | AttackKind::MinSum
            | AttackKind::Adaptive
    )
}

/// One crafted round at n = 19, f = 4: fifteen honest gradients around a
/// common center plus four adversarial submissions crafted by `attack` with
/// full knowledge of the honest ones (§3.1's omniscient attacker).
fn crafted_round(attack: AttackKind, seed: u64) -> GradientBatch {
    const D: usize = 257; // odd width, so S = 4 shard boundaries straddle packets and lanes
    let mut rng = seeded_rng(seed);
    let honest: Vec<Vector> = (0..15)
        .map(|_| {
            let mut v = gaussian_vector(&mut rng, D, 0.0, 0.05);
            v.axpy(1.0, &Vector::filled(D, 1.0)).unwrap();
            v
        })
        .collect();
    let honest_views: Vec<&[f32]> = honest.iter().map(Vector::as_slice).collect();
    let model = Vector::zeros(D);
    let ctx = AttackContext {
        honest_gradients: &honest_views,
        model: &model,
        byzantine_count: 4,
        declared_f: 4,
        step: 3,
        seed,
        total_workers: 19,
        previous_selection: None,
    };
    let crafted = attack.build().craft(&ctx);
    let mut batch = GradientBatch::with_capacity(D, 19);
    for g in honest.iter().chain(crafted.iter()) {
        batch.push_row(g.as_slice()).unwrap();
    }
    batch
}

#[test]
fn sharded_selection_is_identical_to_unsharded_under_every_attack() {
    // The distance decomposition's no-robustness-loss claim, attack by
    // attack: for every attack × {Krum, Multi-Krum, Bulyan} the S = 4
    // sharded pipeline (per-shard partial distance matrices, shard-order
    // reduce, one global selection) must pick *exactly* the same worker set
    // as the unsharded rule — not merely a set of equal quality.
    for (a, attack) in ALL_ATTACKS.into_iter().enumerate() {
        let batch = crafted_round(attack, 0xA11 + a as u64);
        for kind in [GarKind::Krum, GarKind::MultiKrum, GarKind::Bulyan] {
            let config = GarConfig::new(kind, 4);
            let sharded = ShardedAggregator::new(config, 4).unwrap();
            let selected = sharded.selected_rows(&batch).unwrap().expect("selection rules select");
            let unsharded = match kind {
                GarKind::Krum => MultiKrum::with_selection(4, 1).unwrap().select_batch(&batch),
                GarKind::MultiKrum => MultiKrum::new(4).unwrap().select_batch(&batch),
                GarKind::Bulyan => Bulyan::new(4).unwrap().select_batch(&batch),
                _ => unreachable!(),
            }
            .unwrap();
            assert_eq!(
                selected, unsharded,
                "{kind} under {attack:?}: sharded selection diverged from unsharded"
            );
            // For Krum/Multi-Krum the selection *is* the aggregation set, so
            // under active non-stealthy attacks it must exclude every
            // Byzantine slot (workers 15..19). Bulyan's θ = n − 2f selection
            // phase may admit a straggler — its phase-2 median window is
            // what neutralises it — so it is exempt here.
            if kind != GarKind::Bulyan && !within_variance(&attack) {
                assert!(
                    selected.iter().all(|&w| w < 15),
                    "{kind} under {attack:?}: Byzantine worker selected: {selected:?}"
                );
            }
        }
    }
}

#[test]
fn sharded_aggregates_match_unsharded_under_every_attack() {
    // The same matrix for the aggregate itself, including the selection-free
    // trimmed mean: S = 4 sharded output within 1e-6 of the unsharded one.
    for (a, attack) in ALL_ATTACKS.into_iter().enumerate() {
        let batch = crafted_round(attack, 0xB22 + a as u64);
        for kind in [GarKind::Krum, GarKind::MultiKrum, GarKind::Bulyan, GarKind::TrimmedMean] {
            let config = GarConfig::new(kind, 4);
            let unsharded = config.build().unwrap().aggregate_batch(&batch).unwrap();
            let sharded =
                ShardedAggregator::new(config, 4).unwrap().aggregate_batch(&batch).unwrap();
            for c in 0..unsharded.len() {
                assert!(
                    (sharded[c] - unsharded[c]).abs() <= 1e-6 * unsharded[c].abs().max(1.0),
                    "{kind} under {attack:?}: coordinate {c}: sharded {} vs unsharded {}",
                    sharded[c],
                    unsharded[c]
                );
            }
        }
    }
}

#[test]
fn new_attack_family_survives_flat_sharded_quorum_and_churn() {
    // The omniscient attack family (ALIE, min-max, min-sum, adaptive) against
    // strong resilience, across every deployment shape the server supports:
    // the flat tier, the S = 4 sharded tier, the streaming round with an
    // n − f quorum, and elastic membership under a crash→rejoin schedule.
    // Bulyan at the paper's deployment size (n = 19, f = 4) must keep
    // learning in every cell of the grid.
    let new_attacks =
        [AttackKind::Alie { z: 0.0 }, AttackKind::MinMax, AttackKind::MinSum, AttackKind::Adaptive];
    for attack in new_attacks {
        for arm in ["flat", "sharded", "quorum", "churn"] {
            let mut config = RunnerConfig {
                gar: GarConfig::new(GarKind::Bulyan, 4),
                workers: 19,
                byzantine_count: 4,
                attack,
                max_steps: 100,
                eval_every: 25,
                eval_samples: 256,
                learning_rate: LearningRate::Fixed { rate: 0.01 },
                seed: 21,
                ..RunnerConfig::quick_default()
            };
            match arm {
                "sharded" => config.shards = 4,
                "quorum" => {
                    // An n − f quorum admits 15 rows, below Bulyan's 4f + 3
                    // floor, so the quorum cell runs Multi-Krum (floor
                    // 2f + 3 = 11) — the same pairing the streaming round
                    // uses elsewhere.
                    config.gar = GarConfig::new(GarKind::MultiKrum, 4);
                    config.streaming.enabled = true;
                    config.streaming.quorum = QuorumPolicy::NMinusF;
                }
                "churn" => {
                    // An honest worker crashes mid-run and rejoins three
                    // rounds later. Bulyan's floor is 4f + 3 = 19 = n, so the
                    // crash rounds are refused outright and the rejoiner's
                    // first (epoch-fenced) round is a skipped update.
                    config.fault_plan = FaultPlan::empty().with(10, 2, FaultAction::Crash).with(
                        13,
                        2,
                        FaultAction::Rejoin,
                    );
                }
                _ => {}
            }
            let report = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");
            if arm == "churn" {
                assert_eq!(report.refused_rounds, 3, "{attack:?}/{arm}: crash rounds refused");
                assert_eq!(report.skipped_updates, 1, "{attack:?}/{arm}: fenced rejoin skipped");
                assert!(report.stale_epoch_rejects > 0, "{attack:?}/{arm}: fence fired");
            } else {
                assert_eq!(report.refused_rounds, 0, "{attack:?}/{arm}: static run never refuses");
                assert_eq!(report.skipped_updates, 0, "{attack:?}/{arm}: no skips expected");
            }
            assert!(
                report.final_accuracy() > 0.6,
                "Bulyan under {attack:?} ({arm}): accuracy {}",
                report.final_accuracy()
            );
        }
    }
}

#[test]
fn colluding_group_is_rejected_at_the_tree_root_under_the_composed_bound() {
    // The tree tier's worst-case adversary placement: all f Byzantine
    // workers concentrate in the fewest groups, capture them outright, and
    // submit bit-identical poisoned group outputs. The composed bound says a
    // robust root with f_root ≥ captured-groups still rejects them — for
    // both selection-family roots, across the exact floor geometry of each:
    // Multi-Krum (2f + 3: groups of 6, 5 groups) and Bulyan (4f + 3: groups
    // of 7, 7 groups). Three colluders capture at most one group, so the
    // f = 1 root excludes its output every round and the run keeps learning
    // with no Byzantine row ever entering the selection feedback.
    let arms = [(GarKind::MultiKrum, 6usize, 30usize), (GarKind::Bulyan, 7usize, 49usize)];
    for (kind, group_size, workers) in arms {
        let tree = agg_core::TreeConfig::uniform(kind, 1, 1, group_size);
        let config = RunnerConfig {
            gar: tree.root,
            tree: Some(tree),
            workers,
            byzantine_count: 3, // == tree.composed_max_f()
            attack: AttackKind::GroupCollusion { scale: 100.0, group_size },
            max_steps: 100,
            eval_every: 25,
            eval_samples: 256,
            learning_rate: LearningRate::Fixed { rate: 0.01 },
            seed: 21,
            ..RunnerConfig::quick_default()
        };
        assert_eq!(tree.composed_max_f(), 3, "{kind}: composed bound");
        let report = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");
        assert!(
            report.final_accuracy() > GOOD,
            "{kind} root under group collusion: accuracy {}",
            report.final_accuracy()
        );
        // Multi-Krum's selection *is* its aggregation set, so the captured
        // group must be excluded outright. Bulyan's θ = n − 2f selection may
        // admit the captured output — its phase-2 trimmed median is what
        // neutralises it — mirroring the within-variance exemption of the
        // flat matrix above.
        if kind == GarKind::MultiKrum {
            assert_eq!(
                report.byzantine_selected_rounds, 0,
                "{kind} root: a captured group's members must never reach the selection set"
            );
        }
        assert_eq!(report.refused_rounds, 0, "{kind}: a full roster never refuses");
        assert_eq!(report.skipped_updates, 0, "{kind}: the root floor holds every round");
    }

    // The contrast arm that proves the attack is live: an averaging root has
    // no rejection step, so the same concentrated collusion drags the model.
    let tree = agg_core::TreeConfig {
        group: GarConfig::new(GarKind::Average, 0),
        root: GarConfig::new(GarKind::Average, 0),
        group_size: 6,
    };
    let config = RunnerConfig {
        gar: tree.root,
        tree: Some(tree),
        workers: 30,
        byzantine_count: 3,
        attack: AttackKind::GroupCollusion { scale: 100.0, group_size: 6 },
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    let report = SyncTrainingEngine::new(config).expect("valid").run().expect("runs");
    assert!(
        report.final_accuracy() < BAD,
        "an averaging root should collapse under group collusion, got {}",
        report.final_accuracy()
    );
}

#[test]
fn reputation_ledger_quarantines_the_identity_rotator_the_bare_gar_only_tolerates() {
    // The Adaptive attacker × {no ledger, ledger} rows of the matrix. Both
    // cells keep learning — Multi-Krum already excludes the rotator's rows —
    // but only the ledger cell *punishes* the rotation: the stale-epoch
    // evidence its crash/rejoin cycling leaves behind drives every attacker
    // slot into quarantine, while without the ledger the churn goes
    // unrecorded and unpunished.
    let base = RunnerConfig {
        gar: GarConfig::new(GarKind::MultiKrum, 4),
        workers: 19,
        byzantine_count: 4,
        attack: AttackKind::Adaptive,
        adaptive_churn: true,
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };

    let bare = SyncTrainingEngine::new(base.clone()).expect("valid").run().expect("runs");
    assert_eq!(bare.quarantine_count(), 0, "no ledger, no quarantines");
    assert!(bare.final_accuracy() > GOOD, "bare accuracy {}", bare.final_accuracy());

    let mut with_ledger = base;
    with_ledger.reputation = Some(ReputationConfig::default());
    let report = SyncTrainingEngine::new(with_ledger).expect("valid").run().expect("runs");
    assert!(report.quarantine_count() > 0, "the rotation must be punished");
    for event in &report.quarantine_events {
        assert!(event.worker >= 15, "honest worker {} in {event:?}", event.worker);
    }
    assert!(report.final_accuracy() > GOOD, "ledger accuracy {}", report.final_accuracy());
}

#[test]
fn reputation_reshuffle_extends_the_tree_matrix_past_the_composed_bound() {
    // The GroupCollusion × {no ledger, ledger} rows at 15 colluders — five
    // times the composed bound of the Multi-Krum tree. Static placement is
    // captured (the baseline row proves the attack is live); the ledger's
    // containment reshuffle concentrates the colluders into sacrificial
    // groups the root out-votes, and no Byzantine row ever reaches the
    // selection feedback.
    let tree = agg_core::TreeConfig::uniform(GarKind::MultiKrum, 1, 1, 6);
    let base = RunnerConfig {
        gar: tree.root,
        tree: Some(tree),
        workers: 30,
        byzantine_count: 15,
        attack: AttackKind::GroupCollusion { scale: 100.0, group_size: 6 },
        max_steps: 100,
        eval_every: 25,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 21,
        ..RunnerConfig::quick_default()
    };
    assert!(base.byzantine_count > tree.composed_max_f());

    let captured = SyncTrainingEngine::new(base.clone()).expect("valid").run().expect("runs");
    assert!(captured.byzantine_selected_rounds > 0, "static placement must be captured");

    let mut with_ledger = base;
    with_ledger.reputation =
        Some(ReputationConfig { reshuffle_every: 1, ..ReputationConfig::default() });
    let report = SyncTrainingEngine::new(with_ledger).expect("valid").run().expect("runs");
    assert_eq!(report.byzantine_selected_rounds, 0, "containment holds at 5× the bound");
    assert!(report.final_accuracy() > GOOD, "contained accuracy {}", report.final_accuracy());
    assert!(
        report.final_accuracy() > captured.final_accuracy(),
        "containment must out-train capture: {} vs {}",
        report.final_accuracy(),
        captured.final_accuracy()
    );
}

#[test]
fn corrupted_data_ruins_averaging_but_not_multi_krum() {
    // The Figure 7 experiment: a single worker training on malformed records.
    let tf = run_poisoned(GarKind::Average, 0, 1);
    let aggregathor = run_poisoned(GarKind::MultiKrum, 1, 1);
    assert!(tf.final_accuracy() < BAD, "averaging should degrade, got {}", tf.final_accuracy());
    assert!(
        aggregathor.final_accuracy() > GOOD,
        "Multi-Krum should match the ideal run, got {}",
        aggregathor.final_accuracy()
    );
}

#[test]
fn adaptive_churn_policy_rotates_identities_from_selection_feedback() {
    // The attacker-controlled-churn channel, pinned as a pure function of
    // the feedback: with no selection information the adversary stays put;
    // afterwards every selected attacker slot is crashed (it retires at its
    // moment of maximum exposure) and every excluded one is rejoined.
    let attack = AttackKind::Adaptive.build();
    let model = Vector::zeros(4);
    let ctx = |selection: Option<&'static [usize]>| AttackContext {
        honest_gradients: &[],
        model: &model,
        byzantine_count: 2,
        declared_f: 2,
        step: 3,
        seed: 9,
        total_workers: 9,
        previous_selection: selection,
    };
    // Attacker slots are 7 and 8 (the trailing ids).
    assert_eq!(attack.plan_churn(&ctx(None)), vec![]);
    assert_eq!(
        attack.plan_churn(&ctx(Some(&[0, 1, 7]))),
        vec![ChurnDirective::Crash(7), ChurnDirective::Rejoin(8)]
    );
    assert_eq!(
        attack.plan_churn(&ctx(Some(&[0, 1, 2]))),
        vec![ChurnDirective::Rejoin(7), ChurnDirective::Rejoin(8)]
    );
    assert_eq!(
        attack.plan_churn(&ctx(Some(&[7, 8]))),
        vec![ChurnDirective::Crash(7), ChurnDirective::Crash(8)]
    );
    // Every other attack in the catalogue leaves the membership alone.
    for kind in ALL_ATTACKS {
        if kind != AttackKind::Adaptive {
            assert_eq!(kind.build().plan_churn(&ctx(Some(&[0, 7]))), vec![], "{kind:?}");
        }
    }
}
