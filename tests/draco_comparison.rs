//! Integration tests comparing Draco with the AggregaThor stack, mirroring
//! the qualitative claims of the paper's §4.2 / §5:
//!
//! * both reach comparable final accuracy without Byzantine workers;
//! * Draco's throughput sits far below the GAR-based systems;
//! * Draco pays `2f + 1`-fold redundancy, so its simulated time per step is
//!   much larger;
//! * Draco requires agreement on the data assignment (groups share batches),
//!   which AggregaThor does not.

use agg_core::{GarConfig, GarKind};
use agg_draco::{
    AssignmentScheme, DracoConfig, DracoThroughputSimulation, DracoTrainer, GroupAssignment,
};
use agg_net::LinkConfig;
use agg_nn::optim::OptimizerKind;
use agg_nn::schedule::LearningRate;
use agg_ps::{
    CostModel, ExperimentKind, RunnerConfig, SyncTrainingEngine, ThroughputSimulation,
    VirtualModelCost,
};

fn experiment() -> ExperimentKind {
    ExperimentKind::MlpBlobs { input_dim: 32, hidden: 48, classes: 10, samples: 2000 }
}

fn draco_config(workers: usize, f: usize) -> DracoConfig {
    DracoConfig {
        batch_size: 25,
        max_steps: 80,
        eval_every: 20,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        optimizer: OptimizerKind::RmsProp,
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 9,
        ..DracoConfig::paper_like(experiment(), workers, f)
    }
}

fn aggregathor_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    RunnerConfig {
        experiment: experiment(),
        gar: GarConfig::new(gar, f),
        workers,
        batch_size: 25,
        max_steps: 80,
        eval_every: 20,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 9,
        ..RunnerConfig::quick_default()
    }
}

#[test]
fn both_systems_reach_comparable_final_accuracy() {
    let draco = DracoTrainer::new(draco_config(19, 4)).unwrap().run().unwrap();
    let aggregathor = SyncTrainingEngine::new(aggregathor_config(GarKind::MultiKrum, 4, 19))
        .unwrap()
        .run()
        .unwrap();
    assert!(draco.final_accuracy() > 0.65, "draco accuracy {}", draco.final_accuracy());
    assert!(
        aggregathor.final_accuracy() > 0.65,
        "aggregathor accuracy {}",
        aggregathor.final_accuracy()
    );
}

#[test]
fn draco_is_slower_in_simulated_time_than_the_baseline_for_the_same_number_of_steps() {
    // The redundancy (2f + 1 gradients' worth of work per useful batch) plus
    // the linear-in-n·d decode make Draco's rounds much longer than the
    // TensorFlow baseline's. The comparison against the robust GARs (which
    // depends on measuring their kernels) is produced by the fig3/fig5/fig6
    // binaries and recorded in EXPERIMENTS.md.
    let draco = DracoTrainer::new(draco_config(19, 4)).unwrap().run().unwrap();
    let baseline = SyncTrainingEngine::new(aggregathor_config(GarKind::Average, 0, 19))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        draco.simulated_time_sec > 1.5 * baseline.simulated_time_sec,
        "draco {:.1}s vs baseline {:.1}s",
        draco.simulated_time_sec,
        baseline.simulated_time_sec
    );
}

#[test]
fn draco_throughput_is_an_order_of_magnitude_below_averaging() {
    let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
    let averaging = ThroughputSimulation {
        workers: 18,
        gar: GarConfig::new(GarKind::Average, 0),
        batch_size: 100,
        cost,
        link: LinkConfig::datacenter(),
        proxy_dimension: 50_000,
        rounds: 3,
        seed: 2,
    }
    .run()
    .unwrap()
    .batches_per_sec;
    let draco = DracoThroughputSimulation {
        workers: 18,
        f: 4,
        scheme: AssignmentScheme::Repetition,
        batch_size: 100,
        cost,
        link: LinkConfig::datacenter(),
        dimension: 1_756_426,
        encode_overhead_factor: 2.0,
        decode_sec_per_worker_million_params: 0.03,
    }
    .run()
    .unwrap();
    assert!(
        averaging > 8.0 * draco,
        "averaging {averaging:.2} batches/s should dwarf Draco {draco:.2} batches/s"
    );
}

#[test]
fn draco_tolerates_exactly_f_byzantine_per_group_and_no_more() {
    // Within the code's tolerance Draco recovers the honest gradient exactly…
    let mut within = draco_config(9, 1);
    within.byzantine_count = 1;
    let report = DracoTrainer::new(within).unwrap().run().unwrap();
    assert!(report.final_accuracy() > 0.65, "accuracy {}", report.final_accuracy());
    assert_eq!(report.skipped_updates, 0);

    // …but colluding traitors outnumbering the group majority defeat it.
    let mut beyond = draco_config(9, 1);
    beyond.byzantine_count = 2;
    let report = DracoTrainer::new(beyond).unwrap().run().unwrap();
    assert!(report.final_accuracy() < 0.65, "accuracy {}", report.final_accuracy());
}

#[test]
fn draco_requires_grouped_data_assignment_unlike_aggregathor() {
    // The structural difference the paper's related-work section stresses:
    // Draco's correctness depends on workers sharing mini-batches (group
    // assignment), whereas every AggregaThor worker samples independently.
    let assignment = GroupAssignment::new(AssignmentScheme::Repetition, 9, 1).unwrap();
    assert_eq!(assignment.redundancy(), 3);
    for g in 0..assignment.group_count() {
        assert_eq!(assignment.group(g).unwrap().len(), 3);
    }
    // AggregaThor's engine imposes no such grouping: every worker has its own
    // independent sampler stream (checked indirectly by the reproducibility
    // and convergence tests in end_to_end.rs).
}
