//! Quorum rounds must equal lossy-drop rounds, for every rule.
//!
//! The streaming engine's quorum policy stops a round at the first `n − f`
//! arrivals and compacts the stragglers away. The load-bearing claim is
//! that this is *exactly* the transport-loss semantics the GARs already
//! absorb: aggregating the accepted rows through the streaming pipeline
//! (per-row distance accumulation, matrix extraction over the compacted
//! slot set, distance-primed aggregation) must be bit-for-bit identical to
//! explicitly dropping the stragglers and running the plain batch rule on
//! what is left. The property is checked over all ten GAR configurations
//! (the nine registry kinds plus Multi-Krum with an explicit selection
//! size), on the flat and the sharded tier, under randomised arrival
//! orders and straggler sets — including rows carrying NaN/±∞ garbage.
//!
//! The adversarial complement: when the `f` slowest workers are the
//! Byzantine ones, an `n − f` quorum excludes them before they can steer
//! the aggregate, so even the non-resilient average survives an attack
//! that ruins it in full synchronous rounds.

use agg_attacks::AttackKind;
use agg_core::{Gar, GarConfig, GarKind, ShardedAggregator};
use agg_ps::{QuorumPolicy, RoundPipeline, RunnerConfig, SyncTrainingEngine};
use agg_tensor::{GradientBatch, Vector};
use proptest::prelude::*;

/// The nine registry kinds plus Multi-Krum with an explicit `m`: every GAR
/// configuration the framework can build.
fn all_configs(f: usize) -> Vec<GarConfig> {
    let mut configs: Vec<GarConfig> =
        GarKind::ALL.iter().map(|&kind| GarConfig::new(kind, f)).collect();
    configs.push(GarConfig::new(GarKind::MultiKrum, f).with_selection(2));
    configs
}

/// Deterministic Fisher–Yates permutation of `0..n` driven by splitmix64.
fn arrival_order(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Runs one quorum round through the streaming pipeline — fill the arena,
/// fold each accepted row in at its arrival, extract the matrix over the
/// compacted slot set, compact — and checks the distance-primed aggregate
/// against the plain batch rule over an explicitly packed batch of the
/// same accepted rows, bit for bit, for every GAR configuration.
fn assert_quorum_equals_explicit_drop(rows: &[Vec<f32>], f: usize, shards: usize, seed: u64) {
    let n = rows.len();
    let d = rows[0].len();
    let quorum = QuorumPolicy::NMinusF.accept_count(n, f);
    let order = arrival_order(n, seed);
    let accepted = &order[..quorum];

    let mut pipeline = RoundPipeline::new(d, n);
    pipeline.enable_distance_streaming(n, d, shards).expect("valid shard plan");
    pipeline.begin_round(n);
    for (slot, row) in rows.iter().enumerate() {
        pipeline.arena_mut().row_mut(slot).copy_from_slice(row);
    }
    // Per-row completion events in arrival order; stragglers never fire.
    for &slot in accepted {
        pipeline.row_done(slot);
    }
    let mut keep = vec![false; n];
    for &slot in accepted {
        keep[slot] = true;
    }
    let kept_slots: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
    let distances = pipeline.matrix(&kept_slots).expect("streaming enabled");
    pipeline.arena_mut().retain_rows(&keep);

    // The explicit-drop reference: the same accepted rows, freshly packed.
    let survivors: Vec<Vector> =
        kept_slots.iter().map(|&slot| Vector::from(rows[slot].clone())).collect();
    let packed = GradientBatch::from_vectors(&survivors).expect("non-empty quorum");

    for config in all_configs(f) {
        let (streamed, reference) = if shards > 1 {
            let rule = ShardedAggregator::new(config, shards).expect("valid shards");
            (
                rule.aggregate_batch_with_distances(pipeline.arena(), &distances),
                rule.aggregate_batch(&packed),
            )
        } else {
            let rule = config.build().expect("buildable rule");
            (
                rule.aggregate_batch_with_distances(pipeline.arena(), &distances),
                rule.aggregate_batch(&packed),
            )
        };
        match (streamed, reference) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "{config} S={shards}: dimension mismatch");
                for c in 0..a.len() {
                    assert_eq!(
                        a[c].to_bits(),
                        b[c].to_bits(),
                        "{config} S={shards}: coordinate {c} diverged: quorum {} vs drop {}",
                        a[c],
                        b[c]
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => {
                panic!("{config} S={shards}: quorum path {a:?} disagrees with explicit drop {b:?}")
            }
        }
    }
}

/// A mostly-finite coordinate that occasionally turns non-finite, mirroring
/// real malicious submissions.
fn sometimes_corrupt() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        Just(f32::NAN).boxed(),
        Just(f32::INFINITY).boxed(),
        Just(f32::NEG_INFINITY).boxed(),
    ]
}

/// Finite batch with up to `n/5 + 1` rows replaced by corrupt submissions.
fn corrupt_rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (8usize..20, 1usize..40).prop_flat_map(|(n, d)| {
        let honest = prop::collection::vec(prop::collection::vec(-8.0f32..8.0, d), n);
        let corrupt =
            prop::collection::vec(prop::collection::vec(sometimes_corrupt(), d), n / 5 + 1);
        (honest, corrupt).prop_map(|(mut rows, corrupt)| {
            let n = rows.len();
            for (k, bad) in corrupt.into_iter().enumerate() {
                rows[(k * 3 + 1) % n] = bad;
            }
            rows
        })
    })
}

proptest! {
    #[test]
    fn quorum_equals_explicit_drop_on_the_flat_tier(
        rows in corrupt_rows(),
        f in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        assert_quorum_equals_explicit_drop(&rows, f, 1, seed);
    }

    #[test]
    fn quorum_equals_explicit_drop_on_the_sharded_tier(
        rows in corrupt_rows(),
        f in 0usize..3,
        shards in 2usize..6,
        seed in 0u64..u64::MAX,
    ) {
        assert_quorum_equals_explicit_drop(&rows, f, shards, seed);
    }
}

fn engine_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: GarConfig::new(gar, f),
        workers,
        max_steps: 40,
        eval_every: 10,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: agg_nn::schedule::LearningRate::Fixed { rate: 0.01 },
        seed: 31,
        ..RunnerConfig::quick_default()
    }
}

#[test]
fn quorum_excludes_byzantine_stragglers() {
    // The adversarial case: the f slowest workers ARE the Byzantine ones.
    // Averaging with no quorum is defenceless — two reversed gradients at
    // 50× scale wreck every round. With an n − f quorum the attackers,
    // being the stragglers, never make the accepted set.
    let mut config = engine_config(GarKind::Average, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    let mut delays = vec![0.0; 9];
    delays[7] = 5.0;
    delays[8] = 5.0;
    config.worker_extra_delay_sec = delays;

    let ruined = SyncTrainingEngine::new(config.clone()).expect("valid config").run().unwrap();

    config.streaming.quorum = QuorumPolicy::NMinusF;
    let defended = SyncTrainingEngine::new(config).expect("valid config").run().unwrap();

    assert!(
        defended.final_accuracy() > ruined.final_accuracy() + 0.2,
        "quorum ({:.3}) should clearly beat the full synchronous round ({:.3}) \
         when the stragglers are the attackers",
        defended.final_accuracy(),
        ruined.final_accuracy()
    );
    assert!(defended.final_accuracy() > 0.6, "accuracy {}", defended.final_accuracy());
}

#[test]
fn quorum_rounds_remain_deterministic_across_thread_modes() {
    // The quorum accept set is decided on simulated arrival times, not host
    // scheduling, so the parallel and sequential engines must agree bit for
    // bit under a quorum too — streaming on for good measure.
    let mut config = engine_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.streaming.enabled = true;
    config.streaming.quorum = QuorumPolicy::NMinusF;
    let mut delays = vec![0.0; 9];
    delays[3] = 2.0;
    delays[5] = 3.0;
    config.worker_extra_delay_sec = delays;
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_eq!(parallel.steps_completed, sequential.steps_completed);
    assert_eq!(parallel.skipped_updates, sequential.skipped_updates);
    for (p, s) in parallel.trace.points().iter().zip(sequential.trace.points()) {
        assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits(), "step {}", p.step);
        assert_eq!(p.loss.to_bits(), s.loss.to_bits(), "step {}", p.step);
    }
}
