//! The reputation ledger end to end: decayed suspicion scores folded from
//! the engine's evidence streams, automatic quarantine with probationary
//! readmission, and the tree tier's collusion-breaking containment
//! reshuffles.
//!
//! Three contracts are pinned here:
//!
//! * **No false positives** — honest workers under a moderate chaos plan
//!   (corruption, drops, duplicates, retransmit exhaustion, quorum
//!   straggling) accrue evidence but are *never* quarantined: the default
//!   config's honest-ceiling arithmetic (`Σ honest weights / (1 − λ)`)
//!   sits strictly below the quarantine threshold, and the proptest block
//!   generalises the pin over arbitrary honest evidence sequences.
//! * **Bounded-round capture** — the identity-rotating adaptive adversary
//!   at the paper's deployment size (n = 19, f = 4) is quarantined within
//!   a handful of rounds: its rotation pays a stale-epoch fence hit per
//!   rejoin and its identical crafted rows light up the collusion-affinity
//!   sketch, neither of which geometric decay can forget fast enough.
//! * **Containment beyond the composed bound** — with suspicion-ranked
//!   reshuffles, a Multi-Krum tree survives `GroupCollusion` at
//!   `byzantine_count` far above `composed_max_f`: the most-suspect
//!   workers are concentrated into sacrificial groups (each fully
//!   captured, then out-voted at the root) while every other group stays
//!   below its clique-capture threshold.
//!
//! Everything is seeded; CI's determinism matrix re-runs this suite across
//! `RAYON_NUM_THREADS={1,4}` × `AGG_STREAMING={on,off}` and the
//! determinism test below asserts the parallel and sequential engines
//! agree bit for bit, ledger state included.

use agg_attacks::AttackKind;
use agg_core::{GarConfig, GarKind, TreeConfig};
use agg_net::{ChaosConfig, LinkConfig, LossPolicy, RetransmitConfig};
use agg_nn::schedule::LearningRate;
use agg_ps::{
    ReputationConfig, ReputationLedger, RoundEvidence, RunnerConfig, StandingChange,
    SyncTrainingEngine, TrainingReport, TransportKind,
};
use proptest::prelude::*;

fn base_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    let mut config = RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: GarConfig::new(gar, f),
        workers,
        max_steps: 40,
        eval_every: 10,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 23,
        reputation: Some(ReputationConfig::default()),
        ..RunnerConfig::quick_default()
    };
    // The CI matrix hook: `AGG_STREAMING=on` reruns the whole suite on the
    // streaming round pipeline.
    if matches!(std::env::var("AGG_STREAMING").as_deref(), Ok("on") | Ok("1") | Ok("true")) {
        config.streaming.enabled = true;
    }
    config
}

/// Degrades the trailing `lossy` links with the moderate chaos mix and the
/// default retransmit recovery — the wire conditions an honest worker must
/// survive without ever being quarantined.
fn degrade(config: &mut RunnerConfig, lossy: usize) {
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = lossy;
    config.link = LinkConfig::datacenter().with_drop_rate(0.05);
    config.chaos = Some(ChaosConfig::moderate());
    config.retransmit = Some(RetransmitConfig::default());
}

fn run(config: RunnerConfig) -> TrainingReport {
    SyncTrainingEngine::new(config).expect("valid config").run().expect("runs")
}

// ---------------------------------------------------------------------------
// False-positive guarantee
// ---------------------------------------------------------------------------

#[test]
fn honest_workers_under_moderate_chaos_are_never_quarantined() {
    // All-honest roster, three degraded links running the full chaos mix
    // with retransmit recovery: corruption and exhaustion evidence flows
    // into the ledger every round, yet no score may ever cross the
    // threshold — the acceptance criterion's zero-false-positive pin.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    degrade(&mut config, 3);
    let report = run(config);

    assert!(report.quarantine_events.is_empty(), "honest run must stay quarantine-free");
    assert_eq!(report.quarantine_count(), 0);
    let threshold = ReputationConfig::default().quarantine_threshold;
    assert_eq!(report.per_worker.len(), 9);
    for stat in &report.per_worker {
        assert!(
            stat.final_suspicion < threshold,
            "worker {} ended at suspicion {} >= threshold {}",
            stat.worker,
            stat.final_suspicion,
            threshold
        );
        assert_eq!(stat.quarantines, 0, "worker {}", stat.worker);
    }
    // The pin is only meaningful if the chaos actually produced evidence.
    assert!(report.corrupt_rejects > 0, "the chaos schedule never landed a fault");
    let per_worker_corrupt: u64 = report.per_worker.iter().map(|s| s.corrupt_rejects).sum();
    assert_eq!(per_worker_corrupt, report.corrupt_rejects, "breakdown must sum to the global");
    let per_worker_stale: u64 = report.per_worker.iter().map(|s| s.stale_epoch_rejects).sum();
    assert_eq!(per_worker_stale, report.stale_epoch_rejects);
    assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
}

#[test]
fn retransmit_exhaustion_is_counted_separately_from_plain_loss() {
    // Worker 8's link is fully partitioned with a retransmit budget: every
    // round its recovery exhausts, which must land in the dedicated
    // exhaustion counters (global and per-worker) — not be conflated with
    // the plain losses a budget-less run records.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.max_steps = 12;
    config.eval_every = 4;
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 1; // worker 8 only
    config.chaos = Some(ChaosConfig { partition_rate: 1.0, ..ChaosConfig::default() });
    config.retransmit = Some(RetransmitConfig::default());
    let report = run(config.clone());
    assert!(report.retransmit_exhaustions > 0, "the partition must exhaust the budget");
    assert_eq!(
        report.per_worker[8].retransmit_exhaustions, report.retransmit_exhaustions,
        "only the partitioned worker exhausts"
    );
    for stat in &report.per_worker[..8] {
        assert_eq!(stat.retransmit_exhaustions, 0, "worker {}", stat.worker);
    }
    // Exhaustion alone (weight 0.25, decay 0.7) saturates far below the
    // threshold: a flaky link is degraded service, not an attack.
    assert!(report.quarantine_events.is_empty(), "a partitioned honest link is not Byzantine");

    // The same wire without a retransmit budget records zero exhaustions —
    // the loss is plain, and the counter stays silent.
    config.retransmit = None;
    let plain = run(config);
    assert_eq!(plain.retransmit_exhaustions, 0, "no budget, nothing to exhaust");
}

// ---------------------------------------------------------------------------
// Bounded-round quarantine of the identity-rotating adversary
// ---------------------------------------------------------------------------

#[test]
fn adaptive_rotation_is_quarantined_within_bounded_rounds_and_honest_slots_never() {
    // The acceptance scenario: n = 19, f = 4 Multi-Krum, the adaptive
    // adversary rotating identities from selection feedback, moderate chaos
    // on the four honest degraded links (11..=14) to prove discrimination —
    // honest workers accrue wire evidence while the attackers (15..=18)
    // accrue rotation and collusion evidence, and only the latter cross.
    let mut config = base_config(GarKind::MultiKrum, 4, 19);
    config.byzantine_count = 4;
    config.attack = AttackKind::Adaptive;
    config.adaptive_churn = true;
    degrade(&mut config, 8); // links 11..=18: four honest, four Byzantine
    let report = run(config);

    const BOUND: u64 = 8;
    for slot in 15..19 {
        let stat = &report.per_worker[slot];
        assert!(stat.quarantines > 0, "attacker slot {slot} was never quarantined");
        let first = report
            .quarantine_events
            .iter()
            .find(|e| e.worker == slot && e.change == StandingChange::Quarantined)
            .expect("quarantine event recorded");
        assert!(
            first.round <= BOUND,
            "attacker slot {slot} first quarantined at round {} > bound {BOUND}",
            first.round
        );
    }
    for stat in &report.per_worker[..15] {
        assert_eq!(
            stat.quarantines, 0,
            "honest worker {} was quarantined (suspicion {})",
            stat.worker, stat.final_suspicion
        );
    }
    // Probationary readmission is part of the loop: with 40 rounds and a
    // 12-round quarantine, the attackers come back at least once — and are
    // re-captured, so the last ledger word on them is a quarantine.
    assert!(report.readmission_count() > 0, "no probationary readmission ever happened");
    assert!(
        report.quarantine_count() > report.readmission_count(),
        "every readmitted attacker must be re-quarantined: {} quarantines vs {} readmissions",
        report.quarantine_count(),
        report.readmission_count()
    );
    // The summary surfaces the ledger's work.
    assert!(report.summary().contains("readmitted by the reputation ledger"));
    assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
}

#[test]
fn slow_rotation_evades_the_default_ledger_by_pacing_below_the_decay_horizon() {
    // The evasion trade-off, pinned from the attacker's side: rotating one
    // slot per 16-round window keeps every slot's stale-epoch evidence
    // sparser than the decay horizon and its jittered stealth rows below
    // the collusion sketch, so the default ledger never fires — but the
    // evasion *is* the mitigation: stealth-shifted gradients at f = 4
    // leave Multi-Krum's selection intact and the run keeps learning.
    let mut config = base_config(GarKind::MultiKrum, 4, 19);
    config.byzantine_count = 4;
    config.attack = AttackKind::SlowRotation { period: 16, z: 0.5 };
    config.adaptive_churn = true;
    let report = run(config);
    assert_eq!(
        report.quarantine_count(),
        0,
        "slow rotation paced past the decay horizon must evade quarantine: {:?}",
        report.quarantine_events
    );
    assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
}

// ---------------------------------------------------------------------------
// Collusion-breaking containment reshuffles on the tree tier
// ---------------------------------------------------------------------------

#[test]
fn reputation_reshuffles_contain_group_collusion_far_beyond_the_composed_bound() {
    // n = 30 in groups of 6 under a Multi-Krum tree (f_group = f_root = 1):
    // the composed bound tolerates 3 Byzantine workers, yet 15 colluders
    // (half the roster!) attack. Statically placed, they capture three
    // groups outright — enough to capture the 5-way root. With the ledger's
    // containment reshuffle, the affinity sketch flags the cliques in round
    // 0 (before the first aggregation), the suspects are concentrated into
    // ⌊(5−1)/2⌋ = 2 sacrificial groups plus ≤ ⌊(6−1)/2⌋ = 2 per dealt
    // group, and the root out-votes the 2 captured outputs every round.
    let tree = TreeConfig::uniform(GarKind::MultiKrum, 1, 1, 6);
    assert_eq!(tree.composed_max_f(), 3);
    let mut config = base_config(GarKind::MultiKrum, 1, 30);
    config.gar = tree.root;
    config.tree = Some(tree);
    config.byzantine_count = 15;
    config.attack = AttackKind::GroupCollusion { scale: 100.0, group_size: 6 };
    config.reputation = Some(ReputationConfig { reshuffle_every: 1, ..Default::default() });

    let contained = run(config.clone());
    assert_eq!(
        contained.byzantine_selected_rounds, 0,
        "containment must keep every Byzantine row out of the root's selection"
    );
    assert!(contained.final_accuracy() > 0.6, "accuracy {}", contained.final_accuracy());
    assert_eq!(contained.refused_rounds, 0, "containment never breaks the composed floor");

    // The no-ledger baseline proves the attack is live: the same colluders
    // under static contiguous placement capture the root.
    config.reputation = None;
    let captured = run(config);
    assert!(
        captured.byzantine_selected_rounds > 0,
        "static placement at 5× the composed bound must be captured"
    );
    assert!(
        captured.final_accuracy() < contained.final_accuracy(),
        "the captured run must train worse: {} vs {}",
        captured.final_accuracy(),
        contained.final_accuracy()
    );
}

// ---------------------------------------------------------------------------
// Determinism across the CI matrix
// ---------------------------------------------------------------------------

/// Bit-for-bit equality of everything the gradient path and the ledger
/// determine (wall-clock derived fields excluded, as in the seed suite).
fn assert_reports_identical(a: &TrainingReport, b: &TrainingReport) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.steps_completed, b.steps_completed);
    assert_eq!(a.skipped_updates, b.skipped_updates);
    assert_eq!(a.refused_rounds, b.refused_rounds);
    assert_eq!(a.stale_epoch_rejects, b.stale_epoch_rejects);
    assert_eq!(a.corrupt_rejects, b.corrupt_rejects);
    assert_eq!(a.retransmit_exhaustions, b.retransmit_exhaustions);
    assert_eq!(a.byzantine_selected_rounds, b.byzantine_selected_rounds);
    assert_eq!(a.quarantine_events, b.quarantine_events, "ledger transitions diverged");
    assert_eq!(a.per_worker.len(), b.per_worker.len());
    for (x, y) in a.per_worker.iter().zip(&b.per_worker) {
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.stale_epoch_rejects, y.stale_epoch_rejects, "worker {}", x.worker);
        assert_eq!(x.corrupt_rejects, y.corrupt_rejects, "worker {}", x.worker);
        assert_eq!(x.retransmit_exhaustions, y.retransmit_exhaustions, "worker {}", x.worker);
        assert_eq!(x.quarantines, y.quarantines, "worker {}", x.worker);
        assert_eq!(x.readmissions, y.readmissions, "worker {}", x.worker);
        assert_eq!(
            x.final_suspicion.to_bits(),
            y.final_suspicion.to_bits(),
            "suspicion diverged for worker {}: {} vs {}",
            x.worker,
            x.final_suspicion,
            y.final_suspicion
        );
    }
    for (p, s) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(p.step, s.step);
        assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits(), "accuracy at step {}", p.step);
        assert_eq!(p.loss.to_bits(), s.loss.to_bits(), "loss at step {}", p.step);
    }
}

#[test]
fn quarantine_rounds_are_bit_identical_across_thread_and_streaming_modes() {
    // The full ledger pipeline (evidence fold, affinity sketch, quarantine
    // synthesis, readmission) under the adaptive rotation: the rayon
    // fan-out and the sequential seed ordering must agree bit for bit —
    // scores, events and per-worker counters included. CI crosses this
    // with RAYON_NUM_THREADS={1,4} and AGG_STREAMING={on,off}; the explicit
    // streaming flip below ties the two pipelines to each other in-process.
    let mut config = base_config(GarKind::MultiKrum, 4, 19);
    config.max_steps = 24;
    config.eval_every = 6;
    config.byzantine_count = 4;
    config.attack = AttackKind::Adaptive;
    config.adaptive_churn = true;
    degrade(&mut config, 8);

    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config.clone()).expect("valid config");
    sequential.set_phase1_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
    assert!(
        parallel.quarantine_count() > 0,
        "the determinism pin must cover actual quarantine traffic"
    );

    let mut flipped_cfg = config;
    flipped_cfg.streaming.enabled = !flipped_cfg.streaming.enabled;
    let flipped = SyncTrainingEngine::new(flipped_cfg).expect("valid config").run().expect("runs");
    assert_reports_identical(&parallel, &flipped);
}

#[test]
fn tree_reshuffle_rounds_are_bit_identical_across_thread_modes() {
    // The containment reshuffle path (suspicion ranking, seeded rotation,
    // epoch bumps) pinned the same way on the tree tier.
    let tree = TreeConfig::uniform(GarKind::MultiKrum, 1, 1, 6);
    let mut config = base_config(GarKind::MultiKrum, 1, 30);
    config.max_steps = 24;
    config.eval_every = 6;
    config.gar = tree.root;
    config.tree = Some(tree);
    config.byzantine_count = 15;
    config.attack = AttackKind::GroupCollusion { scale: 100.0, group_size: 6 };
    config.reputation = Some(ReputationConfig { reshuffle_every: 1, ..Default::default() });

    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_tree_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
    assert_eq!(parallel.byzantine_selected_rounds, 0);
}

// ---------------------------------------------------------------------------
// Ledger properties (proptest)
// ---------------------------------------------------------------------------

/// All six evidence streams from one generated bitmask.
fn arbitrary_evidence() -> impl Strategy<Value = RoundEvidence> {
    (0u8..64).prop_map(|bits| RoundEvidence {
        corrupt: bits & 1 != 0,
        stale: bits & 2 != 0,
        exhausted: bits & 4 != 0,
        straggled: bits & 8 != 0,
        excluded: bits & 16 != 0,
        colluding: bits & 32 != 0,
    })
}

/// Honest-plausible evidence: anything the wire or the quorum can do to an
/// honest worker (corruption, exhaustion, straggling, selection exclusion)
/// but never the Byzantine-only streams (stale-epoch rotation, collusion).
fn honest_evidence() -> impl Strategy<Value = RoundEvidence> {
    (0u8..16).prop_map(|bits| RoundEvidence {
        corrupt: bits & 1 != 0,
        stale: false,
        exhausted: bits & 2 != 0,
        straggled: bits & 4 != 0,
        excluded: bits & 8 != 0,
        colluding: false,
    })
}

proptest! {
    #[test]
    fn scores_decay_geometrically_without_evidence(
        seq in prop::collection::vec(arbitrary_evidence(), 1..40),
        quiet in 1u64..30,
    ) {
        // Feed an arbitrary evidence prefix, then go quiet: each quiet
        // round must shrink the score by exactly the decay factor, so any
        // finite evidence burst is eventually forgotten.
        let config = ReputationConfig::default();
        let decay = config.decay;
        let mut ledger = ReputationLedger::new(config, 1);
        for (round, e) in seq.iter().enumerate() {
            ledger.observe(round as u64, std::slice::from_ref(e));
        }
        let mut previous = ledger.score(0);
        for round in 0..quiet {
            ledger.observe(seq.len() as u64 + round, &[RoundEvidence::default()]);
            let now = ledger.score(0);
            prop_assert!((now - previous * decay).abs() < 1e-12,
                "quiet round must decay exactly: {now} vs {}", previous * decay);
            prop_assert!(now <= previous, "decay must be monotone: {now} > {previous}");
            previous = now;
        }
    }

    #[test]
    fn an_extra_evidence_bit_never_lowers_the_score(
        seq in prop::collection::vec(arbitrary_evidence(), 1..40),
        flip in 0usize..6,
    ) {
        // Monotonicity in the evidence: strengthening any single round's
        // evidence (turning one stream on) can only raise every subsequent
        // score — the threshold crossing is monotone in what the worker did.
        let base_cfg = ReputationConfig::default();
        let mut base = ReputationLedger::new(base_cfg, 1);
        let mut stronger = ReputationLedger::new(base_cfg, 1);
        for (round, e) in seq.iter().enumerate() {
            let mut boosted = *e;
            if round == seq.len() / 2 {
                match flip {
                    0 => boosted.corrupt = true,
                    1 => boosted.stale = true,
                    2 => boosted.exhausted = true,
                    3 => boosted.straggled = true,
                    4 => boosted.excluded = true,
                    _ => boosted.colluding = true,
                }
            }
            base.observe(round as u64, std::slice::from_ref(e));
            stronger.observe(round as u64, std::slice::from_ref(&boosted));
            prop_assert!(stronger.score(0) >= base.score(0) - 1e-12,
                "round {round}: boosted score {} < base {}", stronger.score(0), base.score(0));
        }
    }

    #[test]
    fn honest_evidence_never_crosses_the_default_threshold(
        seq in prop::collection::vec(honest_evidence(), 1..200),
    ) {
        // The false-positive guarantee as a property: *no* sequence of
        // honest-plausible evidence reaches the default threshold, because
        // the geometric series of honest weights converges strictly below
        // it (ReputationConfig::validate rejects configs where it would
        // not).
        let config = ReputationConfig::default();
        let threshold = config.quarantine_threshold;
        prop_assert!(config.honest_ceiling() < threshold);
        let mut ledger = ReputationLedger::new(config, 1);
        for (round, e) in seq.iter().enumerate() {
            ledger.observe(round as u64, std::slice::from_ref(e));
            prop_assert!(ledger.score(0) < threshold,
                "honest worker crossed at round {round}: {}", ledger.score(0));
        }
        prop_assert!(ledger.quarantine_candidates().is_empty());
    }

    #[test]
    fn the_threshold_crossing_is_monotone_in_the_threshold(
        seq in prop::collection::vec(arbitrary_evidence(), 1..60),
        lo in 1.0f64..4.0,
        hi_delta in 0.1f64..4.0,
    ) {
        // A stricter (lower) threshold can only quarantine earlier: the
        // first crossing round is antitone in the threshold. (Configs here
        // bypass validate() on purpose — the property is about the ledger
        // fold, not the honest-ceiling guard.)
        let hi = lo + hi_delta;
        let first_crossing = |threshold: f64| -> Option<usize> {
            let config = ReputationConfig {
                quarantine_threshold: threshold,
                ..ReputationConfig::default()
            };
            let mut ledger = ReputationLedger::new(config, 1);
            for (round, e) in seq.iter().enumerate() {
                ledger.observe(round as u64, std::slice::from_ref(e));
                if !ledger.quarantine_candidates().is_empty() {
                    return Some(round);
                }
            }
            None
        };
        match (first_crossing(lo), first_crossing(hi)) {
            (None, Some(hi_round)) => prop_assert!(false,
                "crossed the higher threshold {hi} at round {hi_round} but never the lower {lo}"),
            (Some(lo_round), Some(hi_round)) => prop_assert!(lo_round <= hi_round,
                "lower threshold {lo} crossed later ({lo_round}) than higher {hi} ({hi_round})"),
            _ => {}
        }
    }
}
