//! Property tests pinning the bulk wire codec to the legacy per-coordinate
//! codec: `GradientCodec::split_bytes` + `RoundAssembler` must be
//! wire-compatible and value-identical (bit-for-bit, including NaN payloads)
//! with `split` + `Packet::encode/decode` + `reassemble`, under arbitrary
//! packet reordering, duplication and loss, and must reject the same
//! malformed inputs.

use agg_net::{GradientCodec, Packet, RoundAssembler};
use agg_tensor::Vector;
use proptest::prelude::*;

/// Wire payloads include everything a malicious worker or a lossy link can
/// produce: normal values, zeros, NaN and both infinities.
fn wire_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        prop::num::f32::ANY,
        prop::num::f32::ZERO,
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
    ]
}

fn gradient() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(wire_f32(), 0..700)
}

proptest! {
    #[test]
    fn bulk_split_is_byte_identical_to_legacy_encode(
        g in gradient(),
        cpp in 1usize..97,
        worker in 0u32..64,
        step in 0u64..1000,
    ) {
        let codec = GradientCodec::new(cpp).unwrap();
        let legacy: Vec<_> = codec
            .split(worker, step, &Vector::from(g.clone()))
            .iter()
            .map(Packet::encode)
            .collect();
        let bulk = codec.split_bytes(worker, step, &g);
        prop_assert_eq!(legacy.len(), bulk.len());
        for (l, b) in legacy.iter().zip(&bulk) {
            prop_assert_eq!(l.as_ref(), b.as_ref());
        }
    }

    #[test]
    fn legacy_decode_reads_bulk_packets(g in gradient(), cpp in 1usize..97) {
        let codec = GradientCodec::new(cpp).unwrap();
        let structured = codec.split(3, 7, &Vector::from(g.clone()));
        let bulk = codec.split_bytes(3, 7, &g);
        for (expected, wire) in structured.iter().zip(bulk) {
            let decoded = Packet::decode(wire).unwrap();
            prop_assert_eq!(decoded.worker, expected.worker);
            prop_assert_eq!(decoded.step, expected.step);
            prop_assert_eq!(decoded.sequence, expected.sequence);
            prop_assert_eq!(decoded.total, expected.total);
            prop_assert_eq!(decoded.offset, expected.offset);
            prop_assert_eq!(decoded.payload.len(), expected.payload.len());
            for (d, e) in decoded.payload.iter().zip(&expected.payload) {
                prop_assert_eq!(d.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn assembler_matches_legacy_reassembly_under_reordering_duplication_and_loss(
        g in gradient(),
        cpp in 1usize..97,
        selection in prop::collection::vec(0usize..1024, 0..40),
    ) {
        let codec = GradientCodec::new(cpp).unwrap();
        let structured = codec.split(5, 11, &Vector::from(g.clone()));
        let bulk = codec.split_bytes(5, 11, &g);
        // An arbitrary multiset of packet indices: drops, duplicates and
        // reorderings all at once, applied identically to both codecs.
        let picked: Vec<usize> = selection.iter().map(|i| i % structured.len()).collect();
        let legacy_arrivals: Vec<Packet> =
            picked.iter().map(|&i| structured[i].clone()).collect();
        let bulk_arrivals: Vec<_> = picked.iter().map(|&i| bulk[i].clone()).collect();

        let (reference, legacy_missing) = codec.reassemble(&legacy_arrivals, g.len()).unwrap();
        let mut assembler = RoundAssembler::new(g.len());
        let mut row = vec![0.0f32; g.len()];
        let missing = assembler.assemble_into(&bulk_arrivals, &mut row).unwrap();

        prop_assert_eq!(missing, legacy_missing);
        for (a, b) in row.iter().zip(reference.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn both_codecs_reject_the_same_truncations(g in gradient(), cut in 0usize..32) {
        let codec = GradientCodec::new(50).unwrap();
        let bulk = codec.split_bytes(0, 0, &g);
        let first = bulk[0].clone();
        // Truncate somewhere inside the header or the declared payload.
        let cut = cut.min(first.len().saturating_sub(1));
        let truncated = first.slice(0..cut);
        prop_assert!(Packet::decode(truncated.clone()).is_err());
        // The assembler treats a truncation as wire damage: it is skipped and
        // counted, never scattered into the row, and the row stays missing.
        let mut assembler = RoundAssembler::new(g.len());
        let mut row = vec![0.0f32; g.len()];
        let missing = assembler.assemble_into(&[truncated], &mut row).unwrap();
        prop_assert_eq!(missing, g.len());
        prop_assert_eq!(assembler.corrupt_rejects(), 1);
    }

    #[test]
    fn both_codecs_reject_mixed_streams(g in prop::collection::vec(wire_f32(), 1..80)) {
        let codec = GradientCodec::new(16).unwrap();
        let a = codec.split_bytes(0, 0, &g);
        let b = codec.split_bytes(1, 0, &g);
        let mixed: Vec<_> = a.iter().chain(b.iter()).cloned().collect();
        let mut assembler = RoundAssembler::new(g.len());
        let mut row = vec![0.0f32; g.len()];
        prop_assert!(assembler.assemble_into(&mixed, &mut row).is_err());

        let legacy_mixed: Vec<Packet> =
            mixed.into_iter().map(|p| Packet::decode(p).unwrap()).collect();
        prop_assert!(codec.reassemble(&legacy_mixed, g.len()).is_err());
    }
}
