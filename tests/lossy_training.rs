//! Integration tests for training over the lossy transport (the Figure 8
//! experiments): convergence must survive packet loss when a robust GAR (or
//! selective averaging) absorbs it, and the lossy transport must be far
//! cheaper than TCP under loss.

use agg_core::{GarConfig, GarKind};
use agg_net::{LinkConfig, LossPolicy};
use agg_nn::schedule::LearningRate;
use agg_ps::{
    CostModel, RunnerConfig, SyncTrainingEngine, TrainingReport, TransportKind, VirtualModelCost,
};

fn lossy_config(
    gar: GarKind,
    f: usize,
    policy: LossPolicy,
    drop_rate: f64,
    lossy_links: usize,
) -> RunnerConfig {
    RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        transport: TransportKind::Lossy { policy },
        lossy_links,
        link: LinkConfig::datacenter().with_drop_rate(drop_rate),
        max_steps: 80,
        eval_every: 20,
        eval_samples: 256,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 17,
        ..RunnerConfig::quick_default()
    }
}

fn run(config: RunnerConfig) -> TrainingReport {
    SyncTrainingEngine::new(config).expect("valid").run().expect("runs")
}

#[test]
fn robust_gar_over_lossy_links_converges_without_added_loss() {
    let report = run(lossy_config(GarKind::MultiKrum, 8, LossPolicy::RandomFill, 0.0, 8));
    assert!(report.final_accuracy() > 0.7, "accuracy {}", report.final_accuracy());
    assert_eq!(report.skipped_updates, 0);
}

#[test]
fn robust_gar_over_lossy_links_converges_under_ten_percent_loss() {
    let report = run(lossy_config(GarKind::MultiKrum, 8, LossPolicy::RandomFill, 0.10, 8));
    assert!(report.final_accuracy() > 0.7, "accuracy {}", report.final_accuracy());
}

#[test]
fn selective_averaging_tolerates_loss() {
    let report = run(lossy_config(GarKind::SelectiveAverage, 0, LossPolicy::SelectiveNan, 0.10, 8));
    assert!(report.final_accuracy() > 0.7, "accuracy {}", report.final_accuracy());
}

#[test]
fn drop_gradient_policy_still_converges_by_discarding_incomplete_gradients() {
    // "The most straightforward solution": whole gradients are dropped when
    // any packet is missing; the remaining complete gradients still drive
    // convergence at this loss level.
    let report = run(lossy_config(GarKind::Average, 0, LossPolicy::DropGradient, 0.05, 8));
    assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
}

#[test]
fn plain_averaging_over_lossy_links_is_hurt_by_loss() {
    // Without selective handling or a robust GAR, NaN-filled gradients poison
    // the average (the paper observes divergence for TF over lossyMPI).
    let report = run(lossy_config(GarKind::Average, 0, LossPolicy::SelectiveNan, 0.10, 8));
    let robust = run(lossy_config(GarKind::MultiKrum, 8, LossPolicy::RandomFill, 0.10, 8));
    assert!(
        report.final_accuracy() < robust.final_accuracy() - 0.1 || report.skipped_updates > 0,
        "averaging ({}, {} skipped) should do clearly worse than the robust stack ({})",
        report.final_accuracy(),
        report.skipped_updates,
        robust.final_accuracy()
    );
}

#[test]
fn lossy_transport_is_much_faster_than_tcp_under_loss() {
    // Same number of steps, same (averaging) aggregation rule, 10% drop rate,
    // paper-CNN cost model: the reliable transport's congestion collapse under
    // loss makes its rounds far slower than the lossy transport's. The full
    // AggregaThor-vs-TF end-to-end comparison (which also includes the robust
    // GAR's own cost) is produced by the `fig8` experiment binary and recorded
    // in EXPERIMENTS.md; this test pins down the transport-level mechanism.
    let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());

    let mut tcp = lossy_config(GarKind::Average, 0, LossPolicy::RandomFill, 0.10, 19);
    tcp.transport = TransportKind::Reliable;
    tcp.cost = cost;
    tcp.max_steps = 10;
    let tcp_report = run(tcp);

    let mut udp = lossy_config(GarKind::SelectiveAverage, 0, LossPolicy::SelectiveNan, 0.10, 19);
    udp.cost = cost;
    udp.max_steps = 10;
    let udp_report = run(udp);

    // Compare the compute + communication component only: it is derived
    // purely from the cost model and link simulation, hence deterministic.
    // Total simulated time also contains the aggregation term, which the
    // engine calibrates from real wall-clock timings when a virtual model is
    // set — a fixed ratio over it would be flaky across machines and loads.
    let tcp_comm = tcp_report.latency.compute_comm_sec();
    let udp_comm = udp_report.latency.compute_comm_sec();
    assert!(
        tcp_comm > 2.0 * udp_comm,
        "TCP under loss ({tcp_comm:.1}s) should be several times slower than \
         lossyMPI ({udp_comm:.1}s)"
    );
}
