//! The hierarchical (two-level) aggregation tier, end to end.
//!
//! Three contracts:
//!
//! * **Tree == flat where the math composes exactly.** A single-group tree
//!   (g ≥ n) runs the group rule over the whole batch and a degenerate
//!   f = 0 root over one output, so for every coordinate-wise rule the tree
//!   must be *bit-identical* to the flat GAR; multi-group averaging equals
//!   the flat average up to reassociation. Property-tested over arbitrary
//!   batches.
//! * **The tree tier is a pure performance change.** Like the phase-1 and
//!   shard tiers, the grouped stage fans out over rayon but reduces in
//!   ascending group order, so every point of the
//!   `set_phase1_parallel × set_tree_parallel` grid must produce the same
//!   `TrainingReport` bits. CI reruns this suite under
//!   `RAYON_NUM_THREADS={1,4}` × `AGG_STREAMING={on,off}` — streaming
//!   distance accumulation is deliberately a no-op in tree mode, and these
//!   pins prove the flag stays inert.
//! * **Composed resilience holds at engine scale.** A mid-scale tree run
//!   (n = 64, Multi-Krum at both levels) trains through the full
//!   cluster-placement + per-group-link path, and the colluding-group
//!   adversary that concentrates all its workers into the fewest groups is
//!   still rejected at the root under the composed bound.

use agg_attacks::AttackKind;
use agg_core::{GarConfig, GarKind, TreeAggregator, TreeConfig};
use agg_nn::schedule::LearningRate;
use agg_ps::{RunnerConfig, SyncTrainingEngine, TrainingReport};
use agg_tensor::{GradientBatch, Vector};
use proptest::prelude::*;

fn base_config(tree: TreeConfig, workers: usize) -> RunnerConfig {
    let mut config = RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: tree.root,
        tree: Some(tree),
        workers,
        max_steps: 12,
        eval_every: 4,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 37,
        ..RunnerConfig::quick_default()
    };
    // The CI matrix hook: tree mode must be bit-identical whether or not the
    // streaming flag is set, because streaming accumulation is inert here.
    if matches!(std::env::var("AGG_STREAMING").as_deref(), Ok("on") | Ok("1") | Ok("true")) {
        config.streaming.enabled = true;
    }
    config
}

/// Bit-for-bit equality of everything the gradient path determines.
fn assert_reports_identical(a: &TrainingReport, b: &TrainingReport, label: &str) {
    assert_eq!(a.label, b.label, "{label}: labels");
    assert_eq!(a.steps_completed, b.steps_completed, "{label}: steps");
    assert_eq!(a.skipped_updates, b.skipped_updates, "{label}: skips");
    assert_eq!(a.refused_rounds, b.refused_rounds, "{label}: refusals");
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length");
    for (p, q) in a.trace.points().iter().zip(b.trace.points()) {
        assert_eq!(p.step, q.step, "{label}: trace steps");
        assert_eq!(
            p.accuracy.to_bits(),
            q.accuracy.to_bits(),
            "{label}: accuracy diverged at step {}",
            p.step
        );
        assert_eq!(p.loss.to_bits(), q.loss.to_bits(), "{label}: loss diverged at step {}", p.step);
    }
}

#[test]
fn tree_engine_is_deterministic_across_the_parallel_grid() {
    // d = 5380 and n = 40 puts the grouped stage past the rayon work
    // threshold, so the parallel arms genuinely fan groups out; all four
    // grid points must still agree bit-for-bit.
    let tree = TreeConfig::uniform(GarKind::Median, 1, 2, 8);
    let mut config = base_config(tree, 40);
    config.experiment =
        agg_ps::ExperimentKind::MlpBlobs { input_dim: 16, hidden: 256, classes: 4, samples: 600 };
    config.max_steps = 8;
    let mut reports = Vec::new();
    for phase1 in [false, true] {
        for tree_parallel in [false, true] {
            let mut engine = SyncTrainingEngine::new(config.clone()).expect("valid config");
            engine.set_phase1_parallel(phase1);
            engine.set_tree_parallel(tree_parallel);
            reports.push(engine.run().expect("run"));
        }
    }
    for report in &reports[1..] {
        assert_reports_identical(&reports[0], report, "parallel grid");
    }
    assert_eq!(reports[0].steps_completed, 8);
    assert!(reports[0].label.contains("tree(g=8)"), "label: {}", reports[0].label);
}

#[test]
fn tree_engine_is_deterministic_under_attack() {
    // The colluding-group adversary exercises the declared-f plumbing
    // (AttackContext sees the composed bound) on top of the grid pin.
    // Multi-Krum's floor is 2f + 3, so f = 1 groups need g ≥ 5 and the
    // f = 1 root needs ≥ 5 groups: 30 workers in groups of 6.
    let tree = TreeConfig::uniform(GarKind::MultiKrum, 1, 1, 6);
    let mut config = base_config(tree, 30);
    config.byzantine_count = 3;
    config.attack = AttackKind::GroupCollusion { scale: 8.0, group_size: 6 };
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_tree_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential, "collusion grid");
    assert_eq!(parallel.steps_completed, 12);
}

#[test]
fn midscale_tree_round_trains_with_multikrum_at_both_levels() {
    // The engine-scale smoke for the asymptotic claim's correctness half:
    // n = 64 workers in groups of 16 with Multi-Krum at both levels place
    // one aggregator job per group plus a root, and the run learns.
    let tree = TreeConfig::uniform(GarKind::MultiKrum, 6, 0, 16);
    let config = base_config(tree, 64);
    let report = SyncTrainingEngine::new(config).expect("valid config").run().expect("runs");
    assert_eq!(report.steps_completed, 12);
    assert_eq!(report.refused_rounds, 0);
    assert!(report.final_accuracy() > 0.6, "accuracy {}", report.final_accuracy());
}

/// The flat aggregate of `rows` under `kind`/`f`, as raw bits.
fn flat_bits(kind: GarKind, f: usize, rows: &[Vector]) -> Vec<u32> {
    let batch = GradientBatch::from_vectors(rows).expect("batch");
    let gar = GarConfig::new(kind, f).build().expect("rule");
    gar.aggregate_batch(&batch)
        .expect("flat aggregate")
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// The tree aggregate of `rows` under `config` with `groups[i] = i / g`,
/// as raw bits.
fn tree_bits(config: TreeConfig, rows: &[Vector]) -> Vec<u32> {
    let batch = GradientBatch::from_vectors(rows).expect("batch");
    let groups: Vec<usize> = (0..rows.len()).map(|i| i / config.group_size).collect();
    let tree = TreeAggregator::new(config).expect("tree");
    tree.aggregate_batch_grouped(&batch, &groups)
        .expect("tree aggregate")
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-group tree (g ≥ n) must be bit-identical to the flat rule
    /// for every coordinate-wise GAR: the group stage aggregates the whole
    /// batch and the f = 0 root is the identity over its one output.
    #[test]
    fn single_group_tree_is_bit_identical_to_flat(
        rows in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 1..48),
            5..25,
        ),
    ) {
        let d = rows[0].len();
        let rows: Vec<Vector> =
            rows.into_iter().map(|mut r| { r.resize(d, 0.5); Vector::from(r) }).collect();
        for (kind, f) in [
            (GarKind::Average, 0),
            (GarKind::Median, 1),
            (GarKind::TrimmedMean, 1),
            (GarKind::MeaMed, 1),
        ] {
            let tree = TreeConfig::uniform(kind, f, 0, 32);
            prop_assert_eq!(
                tree_bits(tree, &rows),
                flat_bits(kind, f, &rows),
                "{} f={} diverged from flat", kind, f
            );
        }
    }

    /// Multi-group averaging composes exactly in real arithmetic when
    /// g | n (equal group sizes make the average of group averages the
    /// global average); in floats only the summation order differs, so the
    /// tree must match flat to reassociation tolerance.
    #[test]
    fn equal_group_average_matches_flat_up_to_reassociation(
        rows in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 1..48),
            4usize..7,
        ),
        group_size in 2usize..6,
    ) {
        let d = rows[0].len();
        // Replicate the generated rows to exactly groups × group_size.
        let n = rows.len() * group_size;
        let rows: Vec<Vector> = (0..n)
            .map(|i| {
                let mut r = rows[i % rows.len()].clone();
                r.resize(d, 0.25);
                r[i % d] += (i / rows.len()) as f32 * 0.125;
                Vector::from(r)
            })
            .collect();
        let tree = TreeConfig::uniform(GarKind::Average, 0, 0, group_size);
        let tree_result = tree_bits(tree, &rows);
        let flat_result = flat_bits(GarKind::Average, 0, &rows);
        for (i, (&t, &f)) in tree_result.iter().zip(&flat_result).enumerate() {
            let (t, f) = (f32::from_bits(t), f32::from_bits(f));
            let tolerance = 1e-4f32.max(f.abs() * 1e-5);
            prop_assert!(
                (t - f).abs() <= tolerance,
                "coordinate {}: tree {} vs flat {}", i, t, f
            );
        }
    }
}
