//! Elastic membership, end to end: epoch-fenced views, resilience-floor
//! refusals and the omniscient attack family under churn.
//!
//! Two families of pins:
//!
//! * **Determinism** — a churn schedule is part of the round state, so the
//!   parallel phase-1 fan-out, the sharded tier and the streaming round
//!   pipeline must all produce bit-identical reports (traces *and* the
//!   elastic counters: refused rounds, stale-epoch rejects, Byzantine
//!   selections) against the sequential ordering. CI runs this suite under
//!   `RAYON_NUM_THREADS={1,4}` × `AGG_STREAMING={on,off}`, which closes the
//!   thread-count-independence argument exactly as in `round_determinism`.
//!
//! * **Semantics** — a crash→rejoin schedule at the paper's deployment size
//!   behaves identically under every attack in the new family: rounds below
//!   the rule's resilience floor are *refused* (reported, never a panic),
//!   the rejoiner's first submission is rejected by the epoch fence packet
//!   by packet, and under a crude attack the selection set stays honest in
//!   every aggregated round. The within-variance attacks (ALIE, min-max,
//!   min-sum, adaptive) enter Krum-family selections by construction —
//!   that is their published mechanism — so for them the pin is the
//!   faithfully-reported `byzantine_selected_rounds` counter plus the
//!   run's accuracy, not an empty selection.

use agg_attacks::AttackKind;
use agg_core::{resilience, GarConfig, GarKind};
use agg_nn::schedule::LearningRate;
use agg_ps::{
    FaultAction, FaultPlan, QuorumPolicy, RefusalPolicy, RunnerConfig, SyncTrainingEngine,
    TrainingReport,
};

/// The light proxy experiment shared with `round_determinism`: d = 508
/// parameters, which the default 350-coordinate packet codec splits into
/// exactly 2 packets per gradient — the number the stale-epoch pins use.
fn base_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    let mut config = RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: GarConfig::new(gar, f),
        workers,
        max_steps: 24,
        eval_every: 6,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 23,
        ..RunnerConfig::quick_default()
    };
    if matches!(std::env::var("AGG_STREAMING").as_deref(), Ok("on") | Ok("1") | Ok("true")) {
        config.streaming.enabled = true;
    }
    config
}

/// Bit-for-bit equality of everything the gradient path and the membership
/// machinery determine — the `round_determinism` comparison plus the
/// elastic counters.
fn assert_reports_identical(parallel: &TrainingReport, sequential: &TrainingReport) {
    assert_eq!(parallel.steps_completed, sequential.steps_completed);
    assert_eq!(parallel.skipped_updates, sequential.skipped_updates);
    assert_eq!(parallel.refused_rounds, sequential.refused_rounds);
    assert_eq!(parallel.stale_epoch_rejects, sequential.stale_epoch_rejects);
    assert_eq!(parallel.corrupt_rejects, sequential.corrupt_rejects);
    assert_eq!(parallel.byzantine_selected_rounds, sequential.byzantine_selected_rounds);
    assert_eq!(parallel.trace.len(), sequential.trace.len());
    for (p, s) in parallel.trace.points().iter().zip(sequential.trace.points()) {
        assert_eq!(p.step, s.step);
        assert_eq!(
            p.accuracy.to_bits(),
            s.accuracy.to_bits(),
            "accuracy diverged at step {}",
            p.step
        );
        assert_eq!(p.loss.to_bits(), s.loss.to_bits(), "loss diverged at step {}", p.step);
    }
}

/// A churn schedule exercising all three transitions: a crash→rejoin pair,
/// a second overlapping crash and a slow-by demotion.
fn churn_plan() -> FaultPlan {
    FaultPlan::empty()
        .with(4, 1, FaultAction::Crash)
        .with(9, 1, FaultAction::Rejoin)
        .with(7, 3, FaultAction::Crash)
        .with(12, 3, FaultAction::Rejoin)
        .with(2, 0, FaultAction::SlowBy { delay_sec: 0.5 })
}

#[test]
fn churn_schedule_is_bit_identical_across_parallel_and_sequential() {
    // Adaptive attacker + churn: the selection-feedback loop, the epoch
    // fence and the floor check all run inside the round, and none of them
    // may depend on the phase-1 execution order.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::Adaptive;
    config.fault_plan = churn_plan();
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
    // Both fenced rejoins fired: 2 rejoiners × 2 packets each.
    assert_eq!(parallel.stale_epoch_rejects, 4);
    assert_eq!(parallel.steps_completed, 24);
}

#[test]
fn churn_on_the_sharded_tier_matches_sequential_shard_order() {
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.shards = 4;
    config.byzantine_count = 2;
    config.attack = AttackKind::Alie { z: 0.0 };
    config.fault_plan = churn_plan();
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_shard_parallel(false);
    let parallel = parallel.run().expect("shard-parallel run");
    let sequential = sequential.run().expect("shard-sequential run");
    assert_reports_identical(&parallel, &sequential);
}

#[test]
fn churn_streaming_quorum_matches_the_barrier_path() {
    // The full stack at once: churn + streaming distance accumulation + an
    // n − f quorum. The quorum is computed over the *live* worker count, so
    // the membership view feeds straight into the accept threshold, and the
    // result must still match the barrier pipeline bit for bit.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::MinSum;
    config.fault_plan = churn_plan();
    config.streaming.quorum = QuorumPolicy::NMinusF;
    config.streaming.enabled = false;
    let barrier = SyncTrainingEngine::new(config.clone()).expect("valid config").run().unwrap();
    config.streaming.enabled = true;
    let streaming = SyncTrainingEngine::new(config).expect("valid config").run().unwrap();
    assert_reports_identical(&barrier, &streaming);
}

#[test]
fn seeded_churn_plans_are_deterministic_and_runnable() {
    // The generator is pure in its inputs…
    let a = FaultPlan::seeded_churn(77, 9, 24, 3);
    let b = FaultPlan::seeded_churn(77, 9, 24, 3);
    assert_eq!(a, b);
    assert!(!a.is_empty());
    // …and its schedules pass config validation and run to completion with
    // the same bits on both engine orderings.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::MinMax;
    config.fault_plan = a;
    config.validate().expect("generated plans are always valid");
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    assert_reports_identical(
        &parallel.run().expect("parallel run"),
        &sequential.run().expect("sequential run"),
    );
}

#[test]
fn crude_attacks_under_churn_keep_the_selection_set_honest() {
    // Reversed gradients are outliers by construction, so across the whole
    // crash→rejoin run Multi-Krum's selection must never admit a Byzantine
    // row — the engine-level counterpart of the attack-matrix exclusion pin.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.fault_plan =
        FaultPlan::empty().with(5, 1, FaultAction::Crash).with(8, 1, FaultAction::Rejoin);
    let report = SyncTrainingEngine::new(config).expect("valid config").run().expect("runs");
    assert_eq!(report.byzantine_selected_rounds, 0, "selection admitted a Byzantine row");
    assert_eq!(report.refused_rounds, 0, "9 − 1 live workers stay above Multi-Krum's floor");
    assert_eq!(report.stale_epoch_rejects, 2, "one fenced rejoin × two packets");
}

#[test]
fn crash_rejoin_with_every_new_attack_under_multi_krum_and_bulyan() {
    // The acceptance matrix: a crash→rejoin schedule at the paper's
    // deployment size (n = 19, f = 4) crossed with the omniscient attack
    // family, under both the weakly (Multi-Krum, floor 2f + 3 = 11) and the
    // strongly (Bulyan, floor 4f + 3 = 19) resilient rule.
    assert_eq!(resilience::resilience_floor(GarKind::MultiKrum, 4), 11);
    assert_eq!(resilience::resilience_floor(GarKind::Bulyan, 4), 19);
    let attacks =
        [AttackKind::Alie { z: 0.0 }, AttackKind::MinMax, AttackKind::MinSum, AttackKind::Adaptive];
    for attack in attacks {
        for gar in [GarKind::MultiKrum, GarKind::Bulyan] {
            let mut config = base_config(gar, 4, 19);
            config.byzantine_count = 4;
            config.attack = attack;
            config.fault_plan =
                FaultPlan::empty().with(8, 2, FaultAction::Crash).with(11, 2, FaultAction::Rejoin);
            let report =
                SyncTrainingEngine::new(config).expect("valid config").run().expect("runs");
            match gar {
                GarKind::MultiKrum => {
                    // 18 live workers stay above the floor: nothing refused,
                    // nothing skipped, the crash rounds simply aggregate the
                    // remaining submissions.
                    assert_eq!(report.refused_rounds, 0, "{attack:?}/{gar}");
                    assert_eq!(report.skipped_updates, 0, "{attack:?}/{gar}");
                    assert_eq!(report.steps_completed, 24, "{attack:?}/{gar}");
                }
                GarKind::Bulyan => {
                    // n = 19 is exactly Bulyan's floor, so the three crash
                    // rounds are refused (graceful, in the report), and the
                    // rejoiner's fenced round leaves 18 < 19 rows — a skipped
                    // update, not a refusal.
                    assert_eq!(report.refused_rounds, 3, "{attack:?}/{gar}");
                    assert_eq!(report.skipped_updates, 1, "{attack:?}/{gar}");
                    assert_eq!(report.steps_completed, 24 - 4, "{attack:?}/{gar}");
                }
                _ => unreachable!(),
            }
            // The fence rejects the rejoiner's stale-epoch submission packet
            // by packet: d = 508 → exactly 2 packets.
            assert_eq!(report.stale_epoch_rejects, 2, "{attack:?}/{gar}");
            // Within-variance attacks may enter the selection (that is the
            // attack); the counter just has to be faithfully reported, and
            // the run has to keep learning regardless.
            assert!(
                report.final_accuracy() > 0.4,
                "{attack:?}/{gar}: accuracy {}",
                report.final_accuracy()
            );
        }
    }
}

#[test]
fn adaptive_churn_times_crashes_from_selection_feedback() {
    // Attacker-controlled churn timing: instead of a pre-declared schedule,
    // the adaptive adversary crashes its lead worker when the selection
    // excluded it and rejoins it once its gradients are being selected —
    // all through the same epoch-fenced membership machinery, so directives
    // can never exceed what a fault plan could schedule.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::Adaptive;
    config.adaptive_churn = true;
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config.clone()).expect("valid config");
    sequential.set_phase1_parallel(false);
    let parallel_report = parallel.run().expect("parallel run");
    let sequential_report = sequential.run().expect("sequential run");
    // The attacker's timing decisions are deterministic functions of the
    // feedback, so the run stays bit-identical across phase-1 orderings.
    assert_reports_identical(&parallel_report, &sequential_report);
    // The adversary actually churned: the epoch advanced without any
    // scheduled fault plan, and the fence caught the timed rejoin.
    assert!(parallel.membership().epoch() > 0, "the adversary never exercised its churn channel");
    assert!(
        parallel_report.stale_epoch_rejects > 0,
        "a timed rejoin must be fenced exactly like a scheduled one"
    );
    // Flipping the knob off with everything else identical restores the
    // static view: same attack, no churn, epoch pinned at 0.
    config.adaptive_churn = false;
    let mut baseline = SyncTrainingEngine::new(config).expect("valid config");
    let baseline_report = baseline.run().expect("static run");
    assert_eq!(baseline.membership().epoch(), 0);
    assert_eq!(baseline_report.stale_epoch_rejects, 0);
    assert_eq!(parallel_report.steps_completed, 24, "churn never costs a MultiKrum round here");
}

#[test]
fn refusal_policies_degrade_gracefully_not_fatally() {
    // Both refusal policies finish the run and report the same refusals;
    // HoldLastRound keeps charging broadcast rounds, Pause does not record
    // them, and neither turns a floor violation into an error.
    for refusal in [RefusalPolicy::HoldLastRound, RefusalPolicy::Pause] {
        let mut config = base_config(GarKind::Bulyan, 4, 19);
        config.byzantine_count = 4;
        config.attack = AttackKind::Adaptive;
        config.refusal = refusal;
        config.fault_plan =
            FaultPlan::empty().with(8, 2, FaultAction::Crash).with(11, 2, FaultAction::Rejoin);
        let report = SyncTrainingEngine::new(config).expect("valid config").run().expect("runs");
        assert_eq!(report.refused_rounds, 3, "{refusal:?}");
        assert_eq!(report.steps_completed, 20, "{refusal:?}");
        let expected_rounds = match refusal {
            RefusalPolicy::HoldLastRound => 24,
            RefusalPolicy::Pause => 21,
        };
        assert_eq!(report.latency.rounds(), expected_rounds, "{refusal:?}");
        assert!(report.summary().contains("3 refused below the resilience floor"));
    }
}
