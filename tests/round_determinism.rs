//! The parallel round pipeline must be a pure performance change: Phase 1
//! fans honest workers out over rayon, but every worker owns its model,
//! sampler and transport (each with its own derived RNG stream) and writes
//! into its own pre-assigned arena row, so for a fixed seed the parallel
//! engine must produce a `TrainingReport` identical to the sequential seed
//! ordering — same trace, same step counts, same skipped rounds.
//!
//! The sharded aggregation tier gets the same pin: shards run under rayon,
//! but the per-shard kernels are deterministic and the cross-shard reduce
//! happens in fixed shard order, so `set_shard_parallel(false)` (the shard
//! ordering) must be bit-identical to the fan-out. CI runs this whole suite
//! under both `RAYON_NUM_THREADS=1` and `=4`, which closes the argument:
//! in either environment parallel == sequential, and the sequential
//! ordering is trivially thread-count independent, so a 1-thread and a
//! 4-thread process produce the same bits.
//!
//! The streaming round pipeline is pinned the same way: with
//! `streaming.enabled` the distance work for the selection rules runs
//! incrementally per arriving row instead of batch-at-barrier, and the
//! result must be bit-identical — the accumulator replays the exact batch
//! kernels and reduce orders. CI's matrix crosses `RAYON_NUM_THREADS`
//! with `AGG_STREAMING={on,off}`: setting `AGG_STREAMING=on` flips every
//! test in this suite onto the streaming path via `base_config`, so the
//! parallel == sequential pins hold in both modes, and the explicit
//! streaming-vs-barrier tests below tie the two modes to each other.
//!
//! Only the deterministic fields are compared bit-for-bit: the wall-clock
//! derived fields (`time_sec`, `simulated_time_sec`, latency/throughput
//! seconds) embed real `Instant` measurements of the aggregation kernel and
//! were already run-to-run nondeterministic in the sequential seed engine.

use agg_attacks::AttackKind;
use agg_core::{GarConfig, GarKind};
use agg_net::{LinkConfig, LossPolicy};
use agg_nn::schedule::LearningRate;
use agg_ps::{RunnerConfig, SyncTrainingEngine, TrainingReport, TransportKind};

fn base_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
    let mut config = RunnerConfig {
        experiment: agg_ps::ExperimentKind::MlpBlobs {
            input_dim: 16,
            hidden: 24,
            classes: 4,
            samples: 600,
        },
        gar: GarConfig::new(gar, f),
        workers,
        max_steps: 24,
        eval_every: 6,
        eval_samples: 120,
        batch_size: 16,
        learning_rate: LearningRate::Fixed { rate: 0.01 },
        seed: 23,
        ..RunnerConfig::quick_default()
    };
    // The CI matrix hook: `AGG_STREAMING=on` reruns this entire suite with
    // per-row streaming distance accumulation enabled, so every parallel ==
    // sequential pin is checked on both round pipelines.
    if matches!(std::env::var("AGG_STREAMING").as_deref(), Ok("on") | Ok("1") | Ok("true")) {
        config.streaming.enabled = true;
    }
    config
}

fn run_parallel_and_sequential(config: RunnerConfig) -> (TrainingReport, TrainingReport) {
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    (parallel.run().expect("parallel run"), sequential.run().expect("sequential run"))
}

/// Bit-for-bit equality of everything the gradient path determines.
fn assert_reports_identical(parallel: &TrainingReport, sequential: &TrainingReport) {
    assert_eq!(parallel.label, sequential.label);
    assert_eq!(parallel.steps_completed, sequential.steps_completed);
    assert_eq!(parallel.skipped_updates, sequential.skipped_updates);
    assert_eq!(parallel.trace.len(), sequential.trace.len());
    for (p, s) in parallel.trace.points().iter().zip(sequential.trace.points()) {
        assert_eq!(p.step, s.step);
        assert_eq!(
            p.accuracy.to_bits(),
            s.accuracy.to_bits(),
            "accuracy diverged at step {}: parallel {} vs sequential {}",
            p.step,
            p.accuracy,
            s.accuracy
        );
        assert_eq!(
            p.loss.to_bits(),
            s.loss.to_bits(),
            "loss diverged at step {}: parallel {} vs sequential {}",
            p.step,
            p.loss,
            s.loss
        );
    }
}

#[test]
fn parallel_engine_matches_sequential_on_reliable_links() {
    let (parallel, sequential) = run_parallel_and_sequential(base_config(GarKind::Average, 0, 7));
    assert_reports_identical(&parallel, &sequential);
    assert_eq!(parallel.steps_completed, 24);
}

#[test]
fn parallel_engine_matches_sequential_under_attack() {
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::LittleIsEnough { z: 1.0 };
    let (parallel, sequential) = run_parallel_and_sequential(config);
    assert_reports_identical(&parallel, &sequential);
}

#[test]
fn parallel_engine_matches_sequential_over_lossy_links_with_drops() {
    // DropGradient at a substantial loss rate exercises the undelivered-slot
    // compaction: whole rows vanish from some rounds and the skipped count
    // must still line up exactly.
    let mut config = base_config(GarKind::Average, 0, 8);
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 3;
    config.link = LinkConfig::datacenter().with_drop_rate(0.15);
    let (parallel, sequential) = run_parallel_and_sequential(config);
    assert_reports_identical(&parallel, &sequential);
}

#[test]
fn shard_parallel_aggregation_matches_sequential_shard_order() {
    // Multi-Krum over a 4-shard tier: the distance pipeline (per-shard
    // partials, shard-order reduce, global selection) runs under rayon in
    // one engine and in plain shard order in the other.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.shards = 4;
    config.byzantine_count = 2;
    config.attack = AttackKind::LittleIsEnough { z: 1.0 };
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_shard_parallel(false);
    let parallel = parallel.run().expect("shard-parallel run");
    let sequential = sequential.run().expect("shard-sequential run");
    assert_reports_identical(&parallel, &sequential);
    assert_eq!(parallel.steps_completed, 24);
}

#[test]
fn shard_parallel_median_matches_sequential_shard_order() {
    // Coordinate-wise rule through the selection-network kernels: per-shard
    // column ranges start mid-lane-tile, so this pins that the network
    // path's tile/block snapping and NaN canonicalisation stay bit-identical
    // between the rayon fan-out and plain shard order.
    let mut config = base_config(GarKind::Median, 2, 9);
    config.shards = 3;
    config.byzantine_count = 2;
    config.attack = AttackKind::LittleIsEnough { z: 1.5 };
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_shard_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
    assert_eq!(parallel.steps_completed, 24);
}

#[test]
fn shard_parallel_bulyan_matches_sequential_shard_order() {
    // Bulyan drives both halves at once: the sharded distance pipeline for
    // phase 1 and the network mean-around-median kernels for phase 2 over
    // the selected rows.
    let mut config = base_config(GarKind::Bulyan, 1, 9);
    config.shards = 4;
    config.byzantine_count = 1;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_shard_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
    assert_eq!(parallel.steps_completed, 24);
}

#[test]
fn shard_parallel_aggregation_matches_sequential_shard_order_over_lossy_links() {
    // Both parallel tiers at once (phase-1 workers and shards) against the
    // fully sequential engine, over lossy links with whole-row compaction.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.shards = 3;
    config.byzantine_count = 1;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.transport = TransportKind::Lossy { policy: LossPolicy::RandomFill };
    config.lossy_links = 4;
    config.link = LinkConfig::datacenter().with_drop_rate(0.10);
    let mut parallel = SyncTrainingEngine::new(config.clone()).expect("valid config");
    let mut sequential = SyncTrainingEngine::new(config).expect("valid config");
    sequential.set_phase1_parallel(false);
    sequential.set_shard_parallel(false);
    let parallel = parallel.run().expect("parallel run");
    let sequential = sequential.run().expect("sequential run");
    assert_reports_identical(&parallel, &sequential);
}

#[test]
fn streaming_matches_barrier_bit_for_bit_across_thread_modes() {
    // The 2 × 2 grid of {streaming, barrier} × {parallel, sequential}: all
    // four engines must produce identical bits. Multi-Krum over a 4-shard
    // tier exercises the blocked partial-distance accumulator against the
    // sharded batch pipeline.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 2;
    config.attack = AttackKind::LittleIsEnough { z: 1.0 };
    config.shards = 4;
    let mut reports = Vec::new();
    for streaming in [false, true] {
        for parallel in [false, true] {
            let mut c = config.clone();
            c.streaming.enabled = streaming;
            let mut engine = SyncTrainingEngine::new(c).expect("valid config");
            engine.set_phase1_parallel(parallel);
            engine.set_shard_parallel(parallel);
            reports.push(engine.run().expect("run"));
        }
    }
    for report in &reports[1..] {
        assert_reports_identical(&reports[0], report);
    }
    assert_eq!(reports[0].steps_completed, 24);
}

#[test]
fn streaming_matches_barrier_over_lossy_links_with_whole_row_drops() {
    // DropGradient removes whole rows from some rounds, so the streaming
    // accumulator extracts its matrix over a sparse, compacted slot set —
    // the layout a lossy round actually hands the server.
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 1;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.transport = TransportKind::Lossy { policy: LossPolicy::DropGradient };
    config.lossy_links = 4;
    config.link = LinkConfig::datacenter().with_drop_rate(0.15);
    config.streaming.enabled = false;
    let mut barrier_engine = SyncTrainingEngine::new(config.clone()).expect("valid config");
    config.streaming.enabled = true;
    let mut streaming_engine = SyncTrainingEngine::new(config).expect("valid config");
    let barrier = barrier_engine.run().expect("barrier run");
    let streaming = streaming_engine.run().expect("streaming run");
    assert_reports_identical(&barrier, &streaming);
}

#[test]
fn streaming_bulyan_matches_barrier_on_the_sharded_tier() {
    // Bulyan reuses the streamed matrix for its iterated selection and then
    // runs its second phase on the arena rows; both halves must be
    // untouched by the pipeline swap.
    let mut config = base_config(GarKind::Bulyan, 1, 9);
    config.byzantine_count = 1;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.shards = 3;
    config.streaming.enabled = false;
    let barrier = SyncTrainingEngine::new(config.clone()).expect("valid config").run().unwrap();
    config.streaming.enabled = true;
    let streaming = SyncTrainingEngine::new(config).expect("valid config").run().unwrap();
    assert_reports_identical(&barrier, &streaming);
    assert_eq!(barrier.steps_completed, 24);
}

#[test]
fn parallel_engine_matches_sequential_with_random_fill_and_byzantine_workers() {
    let mut config = base_config(GarKind::MultiKrum, 2, 9);
    config.byzantine_count = 1;
    config.attack = AttackKind::Reversed { scale: 50.0 };
    config.transport = TransportKind::Lossy { policy: LossPolicy::RandomFill };
    config.lossy_links = 4;
    config.link = LinkConfig::datacenter().with_drop_rate(0.10);
    let (parallel, sequential) = run_parallel_and_sequential(config);
    assert_reports_identical(&parallel, &sequential);
    // The run must actually have learned something for the comparison to be
    // meaningful (all-zero traces would match trivially).
    assert!(parallel.final_accuracy() > 0.4, "accuracy {}", parallel.final_accuracy());
}
