//! Sharded aggregation must be exactly equivalent to the unsharded arena
//! path, for every rule and every shard count.
//!
//! This is the load-bearing property of the shard-parallel aggregation
//! layer: coordinate-wise rules shard trivially (their per-column
//! reductions are independent, so the outputs are bit-identical), and the
//! distance-based rules (Krum, Multi-Krum, Bulyan) stay *exact* because
//! squared L2 distances decompose into per-shard partial sums — the global
//! selection runs on the shard-reduced matrix and must pick the same
//! workers. The only admissible divergence is floating-point reassociation
//! in the distance sums, hence the 1e-6 tolerance.
//!
//! The property is checked for S ∈ {1, 2, 3, 7} over all ten GAR
//! configurations (the nine registry kinds plus Multi-Krum with an explicit
//! selection size), on finite batches, on batches carrying NaN/±∞ rows, and
//! on slot-addressed arenas that went through undelivered-row compaction
//! (`retain_rows`) — the layout a lossy round hands the server.

use agg_core::{Gar, GarConfig, GarKind, ShardedAggregator};
use agg_tensor::{GradientBatch, Vector};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const TOLERANCE: f32 = 1e-6;

/// The nine registry kinds plus Multi-Krum with an explicit `m`: every GAR
/// configuration the framework can build.
fn all_configs(f: usize) -> Vec<GarConfig> {
    let mut configs: Vec<GarConfig> =
        GarKind::ALL.iter().map(|&kind| GarConfig::new(kind, f)).collect();
    configs.push(GarConfig::new(GarKind::MultiKrum, f).with_selection(2));
    configs
}

/// Component-wise agreement: equal non-finite behaviour, otherwise within
/// 1e-6 of the unsharded value (relative to its magnitude, absolute near
/// zero).
fn close(sharded: f32, unsharded: f32) -> bool {
    if sharded.is_nan() && unsharded.is_nan() {
        return true;
    }
    if sharded == unsharded {
        return true; // covers equal infinities and exact matches
    }
    (sharded - unsharded).abs() <= TOLERANCE * unsharded.abs().max(1.0)
}

/// Runs every configuration through the sharded and unsharded paths at
/// every shard count, requiring agreement on success and on the aggregate.
fn assert_sharded_matches_unsharded(f: usize, batch: &GradientBatch) {
    for config in all_configs(f) {
        let unsharded = config.build().expect("buildable rule").aggregate_batch(batch);
        for shards in SHARD_COUNTS {
            let sharded_rule = ShardedAggregator::new(config, shards).expect("valid shards");
            let sharded = sharded_rule.aggregate_batch(batch);
            match (&sharded, &unsharded) {
                (Ok(a), Ok(b)) => assert_aggregates_close(config, shards, a, b),
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "{config} S={shards}: sharded {a:?} disagrees with unsharded {b:?} on success"
                ),
            }
            // The selection phase, when the rule has one, must pick exactly
            // the same workers — the heart of the no-robustness-loss claim.
            if let Ok(Some(selected)) = sharded_rule.selected_rows(batch) {
                let reference = match config.kind {
                    GarKind::Krum | GarKind::MultiKrum => {
                        let rule = match config.m {
                            Some(m) => agg_core::MultiKrum::with_selection(config.f, m),
                            None if config.kind == GarKind::Krum => {
                                agg_core::MultiKrum::with_selection(config.f, 1)
                            }
                            None => agg_core::MultiKrum::new(config.f),
                        };
                        rule.expect("valid rule").select_batch(batch).expect("selects")
                    }
                    GarKind::Bulyan => agg_core::Bulyan::new(config.f)
                        .expect("valid rule")
                        .select_batch(batch)
                        .expect("selects"),
                    _ => unreachable!("only selection rules return Some"),
                };
                assert_eq!(selected, reference, "{config} S={shards}: sharded selection diverged");
            }
        }
    }
}

fn assert_aggregates_close(config: GarConfig, shards: usize, sharded: &Vector, unsharded: &Vector) {
    // MeaMed and Bulyan's second phase rank every unusable value at key +∞;
    // when a coordinate has fewer usable values than the keep count, which
    // non-finite garbage reaches the mean is not part of the contract (see
    // batch_matches_reference.rs) — any non-finite output matches any other.
    let lenient_non_finite = matches!(config.kind, GarKind::MeaMed | GarKind::Bulyan);
    assert_eq!(sharded.len(), unsharded.len(), "{config} S={shards}: dimension mismatch");
    for c in 0..sharded.len() {
        if lenient_non_finite && !sharded[c].is_finite() && !unsharded[c].is_finite() {
            continue;
        }
        assert!(
            close(sharded[c], unsharded[c]),
            "{config} S={shards}: coordinate {c} diverged: sharded {} vs unsharded {}",
            sharded[c],
            unsharded[c]
        );
    }
}

fn batch_of(rows: Vec<Vec<f32>>) -> GradientBatch {
    let vs: Vec<Vector> = rows.into_iter().map(Vector::from).collect();
    GradientBatch::from_vectors(&vs).expect("consistent rows")
}

fn finite_rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (5usize..24, 1usize..24)
        .prop_flat_map(|(n, d)| prop::collection::vec(prop::collection::vec(-8.0f32..8.0, d), n))
}

/// A mostly-finite coordinate that occasionally turns non-finite, mirroring
/// real malicious submissions.
fn sometimes_corrupt() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        Just(f32::NAN).boxed(),
        Just(f32::INFINITY).boxed(),
        Just(f32::NEG_INFINITY).boxed(),
    ]
}

/// Finite batch with up to `n/5 + 1` rows replaced by corrupt submissions.
fn corrupt_rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (6usize..24, 1usize..16).prop_flat_map(|(n, d)| {
        let honest = prop::collection::vec(prop::collection::vec(-8.0f32..8.0, d), n);
        let corrupt =
            prop::collection::vec(prop::collection::vec(sometimes_corrupt(), d), n / 5 + 1);
        (honest, corrupt).prop_map(|(mut rows, corrupt)| {
            let n = rows.len();
            for (k, bad) in corrupt.into_iter().enumerate() {
                let slot = (k * 3 + 1) % n;
                rows[slot] = bad;
            }
            rows
        })
    })
}

proptest! {
    #[test]
    fn sharded_matches_unsharded_on_finite_batches(rows in finite_rows(), f in 0usize..3) {
        assert_sharded_matches_unsharded(f, &batch_of(rows));
    }

    #[test]
    fn sharded_matches_unsharded_on_corrupt_batches(rows in corrupt_rows(), f in 0usize..3) {
        assert_sharded_matches_unsharded(f, &batch_of(rows));
    }

    #[test]
    fn sharded_matches_unsharded_after_row_compaction(
        rows in corrupt_rows(),
        keep_seed in 0u64..u64::MAX,
        f in 0usize..3,
    ) {
        // The engine's round layout: one slot per worker, written in place,
        // then undelivered slots squeezed out by retain_rows. The survivors
        // must aggregate identically to a freshly packed batch of the same
        // rows — sharded or not.
        let n = rows.len();
        let d = rows[0].len();
        let keep: Vec<bool> = (0..n).map(|i| (keep_seed >> (i % 64)) & 1 == 1 || i == 0).collect();
        let mut arena = GradientBatch::new(d);
        arena.resize_rows(n);
        for (slot, row) in rows.iter().enumerate() {
            arena.row_mut(slot).copy_from_slice(row);
        }
        arena.retain_rows(&keep);
        let survivors: Vec<Vec<f32>> = rows
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(row, _)| row.clone())
            .collect();
        prop_assert_eq!(arena.n(), survivors.len());
        assert_sharded_matches_unsharded(f, &arena);
        // And the compacted arena agrees with the freshly packed batch, bit
        // for bit (NaN payloads included, which `==` would reject).
        let packed = batch_of(survivors);
        prop_assert_eq!(arena.as_slice().len(), packed.as_slice().len());
        for (a, b) in arena.as_slice().iter().zip(packed.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
