//! Cluster deployment: the framework surface of AggregaThor.
//!
//! Shows the pieces the original system exposes through its `deploy.py` /
//! `runner.py` tools: cluster and device-allocation policies, the runner
//! configuration (aggregator, optimizer, learning rate), the security patch
//! that keeps workers from overwriting the shared model, and the admissible
//! Byzantine-resilience envelopes for a given cluster size.
//!
//! ```text
//! cargo run --release -p agg-apps --example cluster_deployment
//! ```

use agg_core::{resilience, GarConfig};
use agg_metrics::Table;
use agg_nn::optim::{OptimizerKind, Regularization};
use agg_nn::schedule::LearningRate;
use agg_ps::{ClusterSpec, ParameterServer, PlacementPolicy};
use agg_tensor::Vector;

fn main() {
    // 1. Cluster description and policy-based placement.
    let cluster = ClusterSpec::paper_default();
    println!("cluster: {} nodes, {} workers", cluster.nodes().len(), cluster.worker_count());
    for (job, node) in cluster.placement().iter().take(5) {
        println!("  {job:?} -> {node}");
    }
    println!("  ... ({} placements total)\n", cluster.placement().len());

    let collocated = ClusterSpec::homogeneous(1, 4, PlacementPolicy::Collocated)
        .expect("local deployment is valid");
    println!(
        "local deployment (artifact appendix): {} workers on node {}\n",
        collocated.worker_count(),
        collocated.worker_node(0).expect("placed").name
    );

    // 2. Runner-style GAR specification strings.
    for spec in ["average", "median:f=4", "multi-krum:f=4,m=9", "bulyan:f=4"] {
        let config = GarConfig::parse(spec).expect("valid spec");
        let gar = config.build().expect("builds");
        let props = gar.properties();
        println!(
            "--aggregator {spec:<22} -> rule '{}', resilience {}, needs n >= {}",
            props.name, props.resilience, props.minimum_workers
        );
    }
    println!();

    // 3. Resilience envelope for the paper's 19-worker cluster.
    let n = 19;
    let mut table = Table::new(
        "Byzantine-resilience envelope for n = 19 workers",
        &["guarantee", "max f", "selection size m̃", "slowdown bound"],
    );
    let f_weak = resilience::max_f_multi_krum(n).unwrap_or(0);
    let f_strong = resilience::max_f_bulyan(n).unwrap_or(0);
    table.add_row(&[
        "weak (Multi-Krum)".to_string(),
        f_weak.to_string(),
        resilience::multi_krum_max_m(n, f_weak).map(|m| m.to_string()).unwrap_or_default(),
        format!("{:.2}", resilience::theoretical_slowdown(n, f_weak, false).unwrap_or(0.0)),
    ]);
    table.add_row(&[
        "strong (Bulyan)".to_string(),
        f_strong.to_string(),
        resilience::bulyan_max_m(n, f_strong).map(|m| m.to_string()).unwrap_or_default(),
        format!("{:.2}", resilience::theoretical_slowdown(n, f_strong, true).unwrap_or(0.0)),
    ]);
    println!("{table}");

    // 4. The TensorFlow vulnerability patch in action.
    let mut server = ParameterServer::new(
        Vector::zeros(8),
        GarConfig::parse("multi-krum:f=2").expect("valid"),
        OptimizerKind::RmsProp,
        LearningRate::paper_default(),
        Regularization::none(),
    )
    .expect("server builds");
    match server.handle_remote_write(5, &Vector::filled(8, 1e9)) {
        Err(e) => println!("worker 5 tried to overwrite the model directly -> rejected: {e}"),
        Ok(()) => unreachable!("the patch rejects remote writes"),
    }
}
