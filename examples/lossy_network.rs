//! Lossy networking: Byzantine resilience as a performance booster.
//!
//! The paper's §3.3 / Figure 8 insight: once a Byzantine-resilient GAR sits
//! at the top of the stack, the transport underneath no longer has to be
//! reliable — lost packets just look like (tolerated) malformed gradients.
//! Over a saturated/lossy network, dropping TCP for a UDP-like transport
//! buys a large speed-up at no accuracy cost.
//!
//! ```text
//! cargo run --release -p agg-apps --example lossy_network
//! ```

use agg_core::{GarConfig, GarKind};
use agg_metrics::Table;
use agg_net::{
    GradientCodec, LinkConfig, LossPolicy, LossyTransport, ReliableTransport, Transport,
};
use agg_ps::{CostModel, RunnerConfig, SyncTrainingEngine, TransportKind, VirtualModelCost};
use agg_tensor::rng::{gaussian_vector, seeded_rng};

fn transfer_comparison() {
    println!("-- single gradient transfer: 1.75M parameters over a 10 Gbps link --");
    let gradient = gaussian_vector(&mut seeded_rng(1), 1_756_426, 0.0, 1.0);
    let codec = GradientCodec::default_mtu();
    let mut table = Table::new(
        "Transfer time of one gradient",
        &["transport", "drop rate", "time (s)", "coordinates lost"],
    );
    for drop in [0.0, 0.05, 0.10] {
        let link = LinkConfig::datacenter().with_drop_rate(drop);
        let mut tcp = ReliableTransport::new(link, codec).expect("valid link");
        let out = tcp.transfer(0, 0, &gradient).expect("transfer");
        table.add_row(&[
            "TCP (gRPC-like)".to_string(),
            format!("{:.0}%", drop * 100.0),
            format!("{:.3}", out.time_sec),
            out.missing_coordinates.to_string(),
        ]);
        let mut udp =
            LossyTransport::new(link, codec, LossPolicy::RandomFill, 3, 0).expect("valid link");
        let out = udp.transfer(0, 0, &gradient).expect("transfer");
        table.add_row(&[
            "lossyMPI (UDP-like)".to_string(),
            format!("{:.0}%", drop * 100.0),
            format!("{:.3}", out.time_sec),
            out.missing_coordinates.to_string(),
        ]);
    }
    println!("{table}");
}

fn training_comparison() {
    println!("-- end-to-end training under a 10% drop rate (19 workers, 8 lossy links) --");
    let base = RunnerConfig {
        workers: 19,
        max_steps: 100,
        eval_every: 20,
        learning_rate: agg_nn::schedule::LearningRate::Fixed { rate: 0.01 },
        link: LinkConfig::datacenter().with_drop_rate(0.10),
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 11,
        ..RunnerConfig::quick_default()
    };

    let mut tcp = base.clone();
    tcp.gar = GarConfig::new(GarKind::Average, 0);
    tcp.transport = TransportKind::Reliable;
    tcp.lossy_links = 8; // the same 8 links are degraded in both deployments
    let tcp_report = SyncTrainingEngine::new(tcp).expect("valid").run().expect("runs");

    let mut udp = base;
    udp.gar = GarConfig::new(GarKind::MultiKrum, 8);
    udp.transport = TransportKind::Lossy { policy: LossPolicy::RandomFill };
    udp.lossy_links = 8;
    let udp_report = SyncTrainingEngine::new(udp).expect("valid").run().expect("runs");

    let mut table = Table::new(
        "Accuracy vs simulated time under loss",
        &["system", "final accuracy", "time to 30% accuracy (s)", "total simulated time (s)"],
    );
    for (name, report) in
        [("TF over gRPC (reliable)", &tcp_report), ("AggregaThor f=8 over lossyMPI", &udp_report)]
    {
        table.add_row(&[
            name.to_string(),
            format!("{:.3}", report.final_accuracy()),
            report
                .time_to_accuracy(0.30)
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "never".into()),
            format!("{:.1}", report.simulated_time_sec),
        ]);
    }
    println!("{table}");
    println!(
        "the robust GAR lets the unreliable transport win: same accuracy, far less time \
         (the paper reports a >6x speed-up to 30% accuracy)."
    );
}

fn main() {
    transfer_comparison();
    training_comparison();
}
