//! Sharded aggregation: the multi-parameter-server deployment, exactly.
//!
//! The paper's deployment splits the model across several parameter
//! servers. Distance-based GARs look like they resist sharding — Krum needs
//! the full-dimension pairwise distances — but squared L2 distances
//! decompose into per-shard partial sums, so the sharded tier computes one
//! partial distance matrix per shard, reduces them in shard order, selects
//! *once globally*, and each shard then averages only the selected rows of
//! its own coordinate slice. No robustness is lost: this example shows the
//! selected worker set is identical, sharded or not, even while under
//! attack.
//!
//! ```text
//! cargo run --release -p agg-apps --example sharded_aggregation
//! ```

use agg_core::{Gar, GarConfig, GarKind, MultiKrum, ShardedAggregator};
use agg_net::{GradientCodec, ShardedRoundAssembler};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use agg_tensor::{GradientBatch, ShardPlan, Vector};

const N: usize = 19; // the paper's worker count
const F: usize = 4; // declared Byzantine workers
const D: usize = 10_000;
const SHARDS: usize = 4;

fn main() {
    // One synchronous round: 15 honest gradients around a common descent
    // direction, 4 Byzantine submissions pulling somewhere else entirely.
    let mut rng = seeded_rng(7);
    let mut batch = GradientBatch::with_capacity(D, N);
    for _ in 0..N - F {
        let mut v = Vector::filled(D, 1.0);
        v.axpy(1.0, &gaussian_vector(&mut rng, D, 0.0, 0.05)).expect("same dimension");
        batch.push_row(v.as_slice()).expect("same dimension");
    }
    for _ in 0..F {
        batch.push_row(Vector::filled(D, -75.0).as_slice()).expect("same dimension");
    }

    // The wire side: a sender splits gradients into MTU-sized packets
    // oblivious to sharding; the sharded assembler routes each payload to
    // the shard owning its coordinates, splitting straddling packets.
    let plan = ShardPlan::new(D, SHARDS).expect("at least one shard");
    let codec = GradientCodec::default_mtu();
    let packets = codec.split_bytes(0, 0, batch.row(0));
    let mut assembler = ShardedRoundAssembler::new(plan.clone());
    let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
    let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
    let missing = assembler.assemble_into(&packets, &mut views).expect("consistent round");
    println!(
        "wire: {} packets routed into {SHARDS} shard rows ({} coordinates missing)",
        packets.len(),
        missing
    );
    for (s, range) in plan.ranges().enumerate() {
        println!("  shard {s}: coordinates {}..{} ({} wide)", range.start, range.end, range.len());
    }

    // The aggregation side: Multi-Krum over the sharded tier vs the
    // monolithic server.
    let config = GarConfig::new(GarKind::MultiKrum, F);
    let sharded = ShardedAggregator::new(config, SHARDS).expect("valid shard count");
    let monolithic = MultiKrum::new(F).expect("valid f");

    let sharded_selection =
        sharded.selected_rows(&batch).expect("selects").expect("multi-krum selects");
    let monolithic_selection = monolithic.select_batch(&batch).expect("selects");
    println!("\nmonolithic selection: {monolithic_selection:?}");
    println!("sharded selection:    {sharded_selection:?}");
    assert_eq!(sharded_selection, monolithic_selection, "the decomposition is exact");
    assert!(
        sharded_selection.iter().all(|&w| w < N - F),
        "no Byzantine worker sneaks into the selection"
    );

    let sharded_update = sharded.aggregate_batch(&batch).expect("aggregates");
    let monolithic_update = monolithic.aggregate_batch(&batch).expect("aggregates");
    let max_diff = sharded_update
        .as_slice()
        .iter()
        .zip(monolithic_update.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "\nupdates agree to {max_diff:.2e} (selection identical, per-shard averages exact); \
         update[0] = {:.4}",
        sharded_update[0]
    );
}
