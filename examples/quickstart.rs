//! Quickstart: train a model with Byzantine-resilient aggregation in a few
//! lines.
//!
//! This example mirrors the "Local deployment" smoke test of the original
//! AggregaThor artifact: build a runner configuration, pick a gradient
//! aggregation rule, run a short synchronous training session, and print the
//! resulting accuracy trace.
//!
//! ```text
//! cargo run --release -p agg-apps --example quickstart
//! ```

use agg_core::{GarConfig, GarKind};
use agg_nn::models;
use agg_ps::{RunnerConfig, SyncTrainingEngine};

fn main() {
    // The paper's Table 1 CNN, built from this repository's layers, just to
    // show the substrate is real.
    let cnn = models::paper_cnn(0);
    println!(
        "Table 1 CNN: {} parameters ({:.2}M, paper reports ~1.75M)\n",
        cnn.param_count(),
        cnn.param_count() as f64 / 1e6
    );

    // A quick distributed run: 11 workers, 1 of them Byzantine would need an
    // attack configured; here we train clean with Multi-Krum (f = 2).
    let config = RunnerConfig {
        gar: GarConfig::new(GarKind::MultiKrum, 2),
        workers: 11,
        max_steps: 120,
        eval_every: 20,
        learning_rate: agg_nn::schedule::LearningRate::Fixed { rate: 0.01 },
        ..RunnerConfig::quick_default()
    };
    println!(
        "training: {} workers, GAR = {}, batch = {}, {} steps",
        config.workers, config.gar, config.batch_size, config.max_steps
    );

    let mut engine = SyncTrainingEngine::new(config).expect("configuration is valid");
    let report = engine.run().expect("training completes");

    println!("\naccuracy trace (step, simulated seconds, test accuracy):");
    for point in report.trace.points() {
        println!(
            "  step {:4}  t = {:7.2}s  accuracy = {:.3}",
            point.step, point.time_sec, point.accuracy
        );
    }
    println!("\n{}", report.summary());
}
