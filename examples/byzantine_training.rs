//! Byzantine training: what happens when an adversary controls workers.
//!
//! Reproduces the paper's core story in miniature: with `f` Byzantine workers
//! sending adversarial gradients, plain averaging (vanilla TensorFlow's
//! `SyncReplicasOptimizer`) is destroyed, the coordinate-wise median and
//! Multi-Krum survive, and Bulyan additionally resists the stealthy
//! dimensional-leeway attack.
//!
//! ```text
//! cargo run --release -p agg-apps --example byzantine_training
//! ```

use agg_attacks::AttackKind;
use agg_core::{GarConfig, GarKind};
use agg_metrics::Table;
use agg_ps::{RunnerConfig, SyncTrainingEngine};

fn run(gar: GarKind, f: usize, attack: AttackKind, byzantine: usize) -> f64 {
    let config = RunnerConfig {
        gar: GarConfig::new(gar, f),
        workers: 19,
        byzantine_count: byzantine,
        attack,
        max_steps: 150,
        eval_every: 25,
        learning_rate: agg_nn::schedule::LearningRate::Fixed { rate: 0.01 },
        seed: 7,
        ..RunnerConfig::quick_default()
    };
    SyncTrainingEngine::new(config)
        .expect("valid configuration")
        .run()
        .expect("run completes")
        .final_accuracy()
}

fn main() {
    let attacks = [
        ("none", AttackKind::None, 0usize),
        ("reversed x100", AttackKind::Reversed { scale: 100.0 }, 4),
        ("random", AttackKind::Random { magnitude: 100.0 }, 4),
        ("NaN / Inf", AttackKind::NonFinite, 4),
        ("little-is-enough", AttackKind::LittleIsEnough { z: 1.5 }, 4),
    ];
    let defences = [
        ("Average (vanilla TF)", GarKind::Average, 0usize),
        ("Median", GarKind::Median, 4),
        ("Multi-Krum", GarKind::MultiKrum, 4),
        ("Bulyan", GarKind::Bulyan, 4),
    ];

    let mut header = vec!["attack \\ defence".to_string()];
    header.extend(defences.iter().map(|(n, _, _)| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Final test accuracy: 19 workers, 4 Byzantine (except row 'none')",
        &header_refs,
    );
    for (attack_name, attack, byzantine) in attacks {
        let mut row = vec![attack_name.to_string()];
        for (_, gar, f) in defences {
            let accuracy = run(gar, f, attack, byzantine);
            row.push(format!("{accuracy:.3}"));
        }
        table.add_row(&row);
        println!("finished attack: {attack_name}");
    }
    println!("\n{table}");
    println!(
        "reading guide: averaging collapses under every active attack; the robust GARs hold. \
         Under 'little-is-enough' the weakly resilient rules lose more accuracy than Bulyan \
         (strong resilience) — the gap the paper motivates Bulyan with."
    );
}
