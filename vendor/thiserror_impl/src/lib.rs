//! The `#[derive(Error)]` macro backing the vendored thiserror shim.
//!
//! Supports the shapes this workspace uses: enums whose variants carry an
//! `#[error("format string")]` attribute referencing fields by name
//! (`{field}`, `{field:?}`) or by position (`{0}`, `{0:?}`). Generates
//! `std::fmt::Display` and `std::error::Error` impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One enum variant: name, field shape, and its `#[error(...)]` format
/// literal (source representation, including the surrounding quotes).
struct Variant {
    name: String,
    fields: VariantFields,
    format: String,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Extracts the string-literal source from an `#[error(...)]` attribute
/// body, if this bracket group is one.
fn error_attribute_literal(group: &proc_macro::Group) -> Option<String> {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "error" => {}
        _ => return None,
    }
    match it.next() {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            match args.stream().into_iter().next() {
                Some(TokenTree::Literal(lit)) => Some(lit.to_string()),
                other => {
                    panic!("thiserror shim: #[error(...)] needs a string literal, got {other:?}")
                }
            }
        }
        other => panic!("thiserror shim: malformed #[error] attribute: {other:?}"),
    }
}

/// Parses named-field names from the tokens inside `{ ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        while i + 1 < tokens.len() {
            match (&tokens[i], &tokens[i + 1]) {
                (TokenTree::Punct(p), TokenTree::Group(g))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    i += 2;
                }
                _ => break,
            }
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => panic!("thiserror shim: expected field name, got {other:?}"),
        }
        i += 1;
        // Skip `: Type` up to a top-level comma.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Counts tuple fields from the tokens inside `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 && idx + 1 != tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

/// Rewrites positional placeholders `{0}` / `{0:?}` to `{_0}` / `{_0:?}` so
/// the generated `write!` can use inline captures of the bound `_N` names.
/// Operates on the literal's source representation; `{{` escapes survive.
fn rewrite_positional(format_src: &str) -> String {
    let chars: Vec<char> = format_src.chars().collect();
    let mut out = String::with_capacity(chars.len() + 4);
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if i + 1 < chars.len() && chars[i + 1] == '{' {
                out.push_str("{{");
                i += 2;
                continue;
            }
            // Peek at the placeholder name.
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            let is_positional =
                j > i + 1 && j < chars.len() && (chars[j] == '}' || chars[j] == ':');
            out.push('{');
            if is_positional {
                out.push('_');
            }
            i += 1;
            continue;
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Collects the identifiers referenced by `{name}` / `{name:spec}`
/// placeholders in a format literal's source representation.
fn referenced_names(format_src: &str) -> Vec<String> {
    let chars: Vec<char> = format_src.chars().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if i + 1 < chars.len() && chars[i + 1] == '{' {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j > i + 1 && j < chars.len() && (chars[j] == '}' || chars[j] == ':') {
                let name: String = chars[i + 1..j].iter().collect();
                if !name.chars().next().unwrap().is_ascii_digit() && !names.contains(&name) {
                    names.push(name);
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    names
}

/// Derives `Display` + `std::error::Error` from `#[error("...")]` attributes.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip item-level attributes and visibility.
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {}
        other => panic!("thiserror shim: only enums are supported, got {other:?}"),
    }
    i += 1;
    let enum_name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("thiserror shim: expected enum name, got {other:?}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("thiserror shim: expected enum body, got {other:?}"),
    };

    // Parse variants with their #[error] attributes.
    let body_tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants: Vec<Variant> = Vec::new();
    let mut k = 0;
    while k < body_tokens.len() {
        let mut format = None;
        // Collect attributes, remembering the #[error] literal.
        while k + 1 < body_tokens.len() {
            match (&body_tokens[k], &body_tokens[k + 1]) {
                (TokenTree::Punct(p), TokenTree::Group(g))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if let Some(lit) = error_attribute_literal(g) {
                        format = Some(lit);
                    }
                    k += 2;
                }
                _ => break,
            }
        }
        let name = match body_tokens.get(k) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("thiserror shim: expected variant name, got {other:?}"),
        };
        k += 1;
        let fields = match body_tokens.get(k) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                k += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                k += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        let format = format.unwrap_or_else(|| {
            panic!("thiserror shim: variant {enum_name}::{name} is missing #[error(\"...\")]")
        });
        variants.push(Variant { name, fields, format });
        while let Some(tok) = body_tokens.get(k) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }

    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let name = &v.name;
            match &v.fields {
                VariantFields::Unit => {
                    format!("{enum_name}::{name} => ::std::write!(__f, {}),", v.format)
                }
                VariantFields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|p| format!("_{p}")).collect();
                    format!(
                        "{enum_name}::{name}({}) => ::std::write!(__f, {}),",
                        binds.join(", "),
                        rewrite_positional(&v.format)
                    )
                }
                VariantFields::Named(field_names) => {
                    let used = referenced_names(&v.format);
                    let binds: Vec<String> =
                        field_names.iter().filter(|f| used.contains(f)).cloned().collect();
                    let pattern = if binds.is_empty() {
                        "{ .. }".to_string()
                    } else {
                        format!("{{ {}, .. }}", binds.join(", "))
                    };
                    format!("{enum_name}::{name} {pattern} => ::std::write!(__f, {}),", v.format)
                }
            }
        })
        .collect();

    let code = format!(
        "impl ::std::fmt::Display for {enum_name} {{\n\
             fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}\n\
         impl ::std::error::Error for {enum_name} {{}}\n",
        arms.join("\n")
    );
    code.parse().expect("thiserror shim: generated invalid impl")
}
