//! Vendored, offline shim of `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! self-contained data model compatible with how the workspace uses serde:
//! `#[derive(Serialize, Deserialize)]` on structs and enums, serialised
//! through [`serde_json`](../serde_json) for config round-trips.
//!
//! Instead of serde's visitor architecture, both traits go through a single
//! JSON-like [`Value`] tree: [`Serialize`] renders a value into the tree and
//! [`Deserialize`] rebuilds the value from it. Formats (here: only JSON)
//! convert between [`Value`] and text. Enum representation mirrors serde's
//! externally-tagged default so the emitted JSON looks familiar.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree every value serialises through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a map or the key is missing.
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field '{key}'"))),
            other => {
                Err(Error::new(format!("expected map with field '{key}', got {}", other.kind())))
            }
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialisation error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialisation into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialisation out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

fn narrow<T, S>(value: S, target: &'static str) -> Result<T, Error>
where
    T: TryFrom<S>,
    S: std::fmt::Display + Copy,
{
    T::try_from(value).map_err(|_| Error::new(format!("number {value} out of range for {target}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(v) => narrow(*v, stringify!($t)),
                    Value::I64(v) if *v >= 0 => narrow(*v as u64, stringify!($t)),
                    Value::F64(v)
                        if v.fract() == 0.0 && *v >= 0.0 && *v <= <$t>::MAX as f64 =>
                    {
                        Ok(*v as $t)
                    }
                    other => Err(Error::new(format!(
                        "expected {} in range, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(v) => narrow(*v, stringify!($t)),
                    Value::U64(v) => narrow(*v, stringify!($t)),
                    Value::F64(v)
                        if v.fract() == 0.0
                            && *v >= <$t>::MIN as f64
                            && *v <= <$t>::MAX as f64 =>
                    {
                        Ok(*v as $t)
                    }
                    other => Err(Error::new(format!(
                        "expected {} in range, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

// `Value` round-trips through itself, so generic JSON documents (whose
// schema the caller inspects at runtime, e.g. the bench-floor checker over
// the committed BENCH_*.json files) can be parsed without a mirror struct.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

/// `&'static str` fields (e.g. rule names) round-trip by leaking the parsed
/// string; acceptable for configuration-sized data in tests and tools.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!("expected single-char string, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected tuple of {expected}, got sequence of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected sequence, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: Serialize + ToString, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord + std::str::FromStr, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_entries(value)
    }
}

impl<K: Deserialize + Eq + Hash + std::str::FromStr, V: Deserialize, S> Deserialize
    for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_entries(value)
    }
}

fn map_entries<C, K, V>(value: &Value) -> Result<C, Error>
where
    C: FromIterator<(K, V)>,
    K: std::str::FromStr,
    V: Deserialize,
{
    match value {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| {
                let key =
                    k.parse::<K>().map_err(|_| Error::new(format!("unparseable map key '{k}'")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect(),
        other => Err(Error::new(format!("expected map, got {}", other.kind()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some = Some(7usize).to_value();
        assert_eq!(Option::<usize>::from_value(&some).unwrap(), Some(7));
        assert_eq!(Option::<usize>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn tuple_round_trip() {
        let v = (1u32, "x".to_string()).to_value();
        let back: (u32, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_string()));
    }

    #[test]
    fn get_field_reports_missing_keys() {
        let v = Value::Map(vec![("a".to_string(), Value::U64(1))]);
        assert!(v.get_field("a").is_ok());
        assert!(v.get_field("b").is_err());
        assert!(Value::Null.get_field("a").is_err());
    }
}
