//! Derive macros for the vendored serde shim.
//!
//! Written directly against `proc_macro` (the offline build environment has
//! no `syn`/`quote`). The parser understands the item shapes this workspace
//! actually derives on: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like. Output code goes through
//! string assembly and re-parsing, the traditional no-dependency route.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// The field shape of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Skips outer attributes (`#[...]`) starting at `i`; returns the new index.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the names of named fields from the token stream inside `{ ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_visibility(&tokens, skip_attributes(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        names.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Counts the fields of a tuple struct/variant from the tokens inside `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

/// Parses the enum body `{ V1, V2(T), V3 { a: T } }`.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parses a derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_visibility(&tokens, skip_attributes(&tokens, 0));
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unsupported struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde shim derive: unsupported enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind '{other}'"),
    }
}

/// Derives `serde::Serialize` (shim: renders into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    Fields::Named(field_names) => {
                        let binds = field_names.join(", ");
                        let entries: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim: rebuilds from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 value.get_field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match value {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({})),\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected sequence of {n} for {name}, got {{}}\", \
                                 __other.kind()))),\n\
                         }}",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__payload)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => match __payload {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({})),\n\
                                 __other => ::std::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"expected sequence of {n} for {name}::{v}, \
                                     got {{}}\", __other.kind()))),\n\
                             }},",
                            inits.join(", ")
                        )
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __payload.get_field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        )
                    }
                    Fields::Unit => unreachable!(),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"unknown {name} variant '{{__other}}'\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::new(\
                                         ::std::format!(\"unknown {name} variant \
                                         '{{__other}}'\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected {name} as string or \
                                 single-entry map, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    code.parse().expect("serde shim derive: generated invalid Deserialize impl")
}
