//! Vendored, offline shim of `rand_distr`.
//!
//! Provides [`Normal`] (Box–Muller over the workspace's deterministic
//! generators) and [`Uniform`], both generic over `f32` / `f64`, plus the
//! [`Distribution`] trait re-exported from the vendored `rand`.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Floating-point scalars the distributions are generic over.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64` (used for the unit uniforms driving the samplers).
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
    /// `true` when the value is finite.
    fn is_finite(self) -> bool;
    /// The additive identity.
    fn zero() -> Self;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    fn zero() -> Self {
        0.0
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    fn zero() -> Self {
        0.0
    }
}

/// Error returned by [`Normal::new`] on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean is non-finite.
    MeanTooSmall,
    /// The standard deviation is negative or non-finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean of Normal distribution is non-finite"),
            NormalError::BadVariance => {
                write!(f, "standard deviation of Normal distribution is invalid")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] when `mean` is non-finite or `std_dev` is
    /// negative or non-finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < F::zero() {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The configured mean.
    pub fn mean(&self) -> F {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller transform; u1 is kept away from 0 so ln(u1) is finite.
        let u1 = standard_unit(rng).max(1e-12);
        let u2 = standard_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// The continuous uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high` (mirrors `rand 0.8` semantics).
    pub fn new(low: F, high: F) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // The affine transform can round up to exactly `high` when the
        // bounds are not representable; resample to keep the half-open
        // contract (`low` itself is always admissible, so this terminates).
        loop {
            let u = standard_unit(rng);
            let value =
                F::from_f64(self.low.to_f64() + (self.high.to_f64() - self.low.to_f64()) * u);
            if value < self.high {
                return value;
            }
        }
    }
}

/// One uniform `f64` in `[0, 1)` drawn from any generator.
fn standard_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let normal = Normal::new(2.0f64, 3.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(12);
        let uniform = Uniform::new(-1.0f32, 1.0);
        for _ in 0..10_000 {
            let x = uniform.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
