//! Vendored, offline shim of `thiserror`.
//!
//! Re-exports the [`Error`] derive macro, which generates `Display` (from
//! `#[error("...")]` attributes) and `std::error::Error` impls.

pub use thiserror_impl::Error;
