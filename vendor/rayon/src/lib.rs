//! Vendored, offline shim of `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `.map(...).collect()` — with
//! genuine data parallelism: items are split into contiguous chunks, one per
//! available core, and mapped on scoped OS threads. Order is preserved.

use std::num::NonZeroUsize;

/// Conversion into a parallel iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` on borrowed slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Builds a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every element through `f`, in parallel at collect time.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`], ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map on scoped threads (one chunk per core) and collects the
    /// results in input order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: From<Vec<U>>,
    {
        C::from(parallel_map(self.items, &self.f))
    }

    /// Sums the mapped values.
    pub fn sum<U>(self) -> U
    where
        U: Send + std::iter::Sum<U>,
        F: Fn(T) -> U + Sync,
    {
        parallel_map(self.items, &self.f).into_iter().sum()
    }
}

/// Worker-thread budget, mirroring real rayon's global-pool sizing: the
/// `RAYON_NUM_THREADS` environment variable wins when set to a positive
/// integer, otherwise the machine's available parallelism. Read once and
/// cached, exactly like rayon's lazily built global pool, so a process sees
/// one consistent thread budget for its whole lifetime (the determinism
/// tests rely on being able to pin it from the environment).
fn thread_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let threads = thread_budget().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let chunk_size = total.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut results: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("rayon shim worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data: Vec<i64> = (0..257).collect();
        let out: Vec<i64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn map_sum() {
        let total: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = vec![7].into_par_iter().map(|i| i).collect();
        assert_eq!(out, vec![7]);
    }
}
