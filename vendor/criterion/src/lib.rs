//! Vendored, offline shim of `criterion`.
//!
//! Mirrors the macro/API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!` / `Criterion::benchmark_group` /
//! `bench_function` / `bench_with_input` / `BenchmarkId` / `black_box`) and,
//! like the real crate, runs in two modes:
//!
//! - **bench mode** (`cargo bench`, i.e. a `--bench` CLI flag is present):
//!   warms up, takes `sample_size` timed samples, and prints median ns/iter;
//! - **test mode** (`cargo test` compiles bench targets too): executes each
//!   benchmark body exactly once as a smoke check, so the test suite stays
//!   fast while still exercising every bench path.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Builds a `Criterion` configured from the process CLI arguments,
    /// mirroring how cargo invokes bench targets.
    pub fn from_args() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.measure, name, 10, routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a routine under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion.measure, &id, self.sample_size, routine);
        self
    }

    /// Benchmarks a routine parameterised by `input` under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_benchmark(self.criterion.measure, &full, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"krum/10000"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a bare parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    measure: bool,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records total time and iteration count.
    ///
    /// In test mode the routine runs exactly once (smoke check).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        // Calibrate: aim for at least ~5 ms of work per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += per_sample;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    measure: bool,
    id: &str,
    sample_size: usize,
    mut routine: F,
) {
    if !measure {
        let mut bencher = Bencher { measure, elapsed: Duration::ZERO, iterations: 0 };
        routine(&mut bencher);
        println!("bench {id}: ok (test mode, 1 iteration)");
        return;
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { measure, elapsed: Duration::ZERO, iterations: 0 };
        routine(&mut bencher);
        if bencher.iterations > 0 {
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    if samples.is_empty() {
        println!("bench {id}: no samples");
        return;
    }
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "bench {id}: median {} [{} .. {}] ({} samples)",
        format_ns(median),
        format_ns(lo),
        format_ns(hi),
        samples.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($function(criterion);)+
        }
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { measure: false };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(50).bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_takes_samples() {
        let mut c = Criterion { measure: true };
        let mut runs = 0u64;
        c.bench_function("f", |b| b.iter(|| runs += 1));
        assert!(runs > 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("krum", 10_000);
        assert_eq!(id.label, "krum/10000");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
