//! Vendored, dependency-free shim of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements exactly the subset of the `rand 0.8` API the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, `gen`, `gen_bool` and `gen_range`
//! over integer and float ranges, and the [`distributions::Distribution`]
//! trait that `rand_distr` builds on.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream on every platform, which is what the paper reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, a fair coin for `bool`, full range for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples from an explicit distribution (mirrors `Rng::sample`).
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // `start + (end - start) * unit` can round up to exactly
                // `end` when the bounds are not exactly representable;
                // resample to keep the documented half-open contract
                // (`start` itself is always admissible, so this terminates).
                loop {
                    let unit = <$t as Standard>::sample_standard(rng);
                    let value = self.start + (self.end - self.start) * unit;
                    if value < self.end {
                        return value;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                (lo + (hi - lo) * unit).min(hi)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Unbiased uniform sample in `0..span` (`span == 0` means the full range).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality non-cryptographic generator
    /// (xoshiro256++, the same family `rand`'s `SmallRng` uses on 64-bit
    /// targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! The distribution abstraction shared with `rand_distr`.

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
