//! Vendored, offline JSON serialiser/deserialiser over the serde shim's
//! [`Value`] tree.
//!
//! Emits standard JSON with one deliberate extension: non-finite floats are
//! written as the bare tokens `NaN`, `Infinity` and `-Infinity` (and parsed
//! back), so value trees containing sentinel floats still round-trip.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails for the shim's value model; kept fallible to mirror the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialises a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the tree does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { chars: text.chars().collect(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {} in JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_nan() {
                out.push_str("NaN");
            } else if *v == f64::INFINITY {
                out.push_str("Infinity");
            } else if *v == f64::NEG_INFINITY {
                out.push_str("-Infinity");
            } else if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep integral floats readable and round-trippable.
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_whitespace(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        self.skip_whitespace();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{c}' at offset {}, found {:?}",
                self.pos,
                self.peek()
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.chars().count();
        if end <= self.chars.len() && self.chars[self.pos..end].iter().collect::<String>() == word {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some('n') if self.eat_keyword("null") => Ok(Value::Null),
            Some('t') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some('f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some('N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some('I') if self.eat_keyword("Infinity") => Ok(Value::F64(f64::INFINITY)),
            Some('"') => self.parse_string().map(Value::Str),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            other => {
                Err(Error::new(format!("unexpected character {other:?} at offset {}", self.pos)))
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| Error::new("unterminated string in JSON input"))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape in JSON input"))?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'u' => {
                            if self.pos + 4 > self.chars.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex: String = self.chars[self.pos..self.pos + 4].iter().collect();
                            self.pos += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => return Err(Error::new(format!("invalid escape '\\{other}'"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
            if self.eat_keyword("Infinity") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, found {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.5f64, -2.0, 0.0];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let pairs = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let json = to_string(&pairs).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let v = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2], f64::NEG_INFINITY);
    }

    #[test]
    fn option_round_trips_as_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
