//! Vendored, offline shim of the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, consumable view), [`BytesMut`]
//! (growable buffer), and the [`Buf`] / [`BufMut`] accessor traits for the
//! little-endian wire format the network layer uses.

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
///
/// `slice` and `clone` are zero-copy: every view shares one `Arc<[u8]>`
/// allocation and carries its own `[start, end)` window.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer viewing `range` of the unread bytes, sharing the same
    /// backing allocation (no copy).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds of Bytes"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Grows (or shrinks) the buffer to `new_len`, filling new bytes with
    /// `value`. Used to reserve a region that is then written in place.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian readers over a consumable buffer.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// Sequential little-endian writers onto a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_wire_format() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(-2.5);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.remaining(), 16);
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.get_u64_le(), 1 << 40);
        assert_eq!(frozen.get_f32_le(), -2.5);
        assert!(frozen.is_empty());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_ref(), &[3, 4]);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }

    #[test]
    fn slice_is_a_zero_copy_window() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = b.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        assert_eq!(mid[15], 23);
        // Shares the parent allocation instead of copying the window.
        assert!(Arc::ptr_eq(&b.data, &mid.data));
        let nested = mid.slice(4..8);
        assert_eq!(nested.as_ref(), &[12, 13, 14, 15]);
        assert!(Arc::ptr_eq(&b.data, &nested.data));
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn bytes_mut_resize_and_in_place_writes() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32_le(7);
        let at = buf.len();
        buf.resize(at + 4, 0);
        buf[at..at + 4].copy_from_slice(&42u32.to_le_bytes());
        let mut frozen = buf.freeze();
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.get_u32_le(), 42);
    }
}
