//! Vendored, offline shim of `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range strategies, `Just`, `prop::collection::vec`,
//! `prop::num::f32` classes, `prop_map` / `prop_flat_map`, `prop_oneof!`,
//! and the `proptest!` / `prop_assert!` macros.
//!
//! Unlike the real crate there is no shrinking: each test runs a fixed
//! number of deterministic cases (seeded per test name and case index), and
//! a failing case panics with the ordinary assertion message. Determinism
//! means failures reproduce exactly across machines and CI runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator driving every strategy.
pub type TestRng = SmallRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator for one (test, case) pair.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (the unit `prop_oneof!` works over).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.alternatives.len());
        self.alternatives[index].generate(rng)
    }
}

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection and numeric strategy namespaces (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// An inclusive size specification for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange { min: exact, max: exact }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(range: std::ops::Range<usize>) -> Self {
                assert!(range.start < range.end, "empty size range");
                SizeRange { min: range.start, max: range.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(range: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { min: *range.start(), max: *range.end() }
            }
        }

        /// Generates `Vec`s whose elements come from `element` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.min == self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..=self.size.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Strategies over numeric classes.
    pub mod num {
        /// `f32` value classes.
        pub mod f32 {
            use super::super::super::{Strategy, TestRng};
            use rand::Rng;

            /// A class of `f32` values usable as a strategy; classes combine
            /// with `|` into a uniform choice.
            #[derive(Debug, Clone, Copy, PartialEq, Eq)]
            pub enum F32Class {
                /// Normal (non-zero, non-subnormal, finite) values.
                Normal,
                /// Positive or negative zero.
                Zero,
                /// Any finite value.
                Any,
            }

            /// Normal `f32` values with a wide exponent spread.
            pub const NORMAL: F32Class = F32Class::Normal;
            /// Zero values.
            pub const ZERO: F32Class = F32Class::Zero;
            /// Any finite value.
            pub const ANY: F32Class = F32Class::Any;

            impl Strategy for F32Class {
                type Value = f32;

                fn generate(&self, rng: &mut TestRng) -> f32 {
                    match self {
                        F32Class::Zero => {
                            if rng.gen::<bool>() {
                                0.0
                            } else {
                                -0.0
                            }
                        }
                        F32Class::Any if rng.gen_range(0u32..16) == 0 => {
                            // "Any finite value" includes zero now and then.
                            0.0
                        }
                        F32Class::Normal | F32Class::Any => {
                            // sign * mantissa * 2^exponent over the entire
                            // normal-float exponent range, like the real
                            // proptest NORMAL class: values span from
                            // f32::MIN_POSITIVE up to near f32::MAX, so
                            // kernels see overflow-provoking magnitudes.
                            let sign = if rng.gen::<bool>() { 1.0f32 } else { -1.0 };
                            let mantissa = rng.gen_range(1.0f32..2.0);
                            let exponent = rng.gen_range(-126i32..=127);
                            let value = sign * mantissa * (exponent as f32).exp2();
                            debug_assert!(value.is_normal());
                            value
                        }
                    }
                }
            }

            impl std::ops::BitOr for F32Class {
                type Output = super::super::super::OneOf<f32>;

                fn bitor(self, rhs: F32Class) -> Self::Output {
                    super::super::super::OneOf::new(vec![
                        super::super::super::Strategy::boxed(self),
                        super::super::super::Strategy::boxed(rhs),
                    ])
                }
            }
        }
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion (panics on failure in this shim, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { ::std::assert!($cond, $($arg)+) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { ::std::assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { ::std::assert_eq!($left, $right, $($arg)+) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { ::std::assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { ::std::assert_ne!($left, $right, $($arg)+) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for(::std::stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_only_picks_alternatives(x in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (len, v) in (1usize..5).prop_flat_map(|len| {
                prop::collection::vec(0i32..10, len).prop_map(move |v| (len, v))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_is_respected(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use super::Strategy;
        let a = (0.0f64..1.0).generate(&mut super::rng_for("t", 0));
        let b = (0.0f64..1.0).generate(&mut super::rng_for("t", 0));
        let c = (0.0f64..1.0).generate(&mut super::rng_for("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f32_classes_generate_their_class() {
        use super::Strategy;
        let mut rng = super::rng_for("classes", 0);
        for _ in 0..100 {
            let n = prop::num::f32::NORMAL.generate(&mut rng);
            assert!(n.is_normal(), "{n} should be a normal float");
            let z = prop::num::f32::ZERO.generate(&mut rng);
            assert_eq!(z, 0.0);
            let u = (prop::num::f32::NORMAL | prop::num::f32::ZERO).generate(&mut rng);
            assert!(u.is_finite());
        }
    }
}
